package livenet

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Params tunes the live engine's real-time supervision. The zero value
// selects the defaults; SetParams must be called before Run.
type Params struct {
	// StallWindow is how long the stall watchdog waits without observing
	// any completed node operation (while unfinished nodes remain) before
	// declaring the run deadlocked. Real sleeps — Advance, fault backoff —
	// count as progress when they complete, so the window only has to
	// outlast the scheduler, not the program. Default 5s.
	StallWindow time.Duration
	// SuspicionTimeout is how long a node may go without a heartbeat before
	// the failure detector declares it dead and aborts the run with a typed
	// *fabric.NodeDownError. Only in force when the installed fault model
	// schedules crash-stop kills (fabric.CrashModel). Detection latency is
	// bounded by SuspicionTimeout plus one detector tick (a quarter of it).
	// Default 250ms.
	SuspicionTimeout time.Duration
	// HeartbeatInterval is how often each node's heartbeat fires. It must
	// stay well under SuspicionTimeout or every node looks dead. Default
	// SuspicionTimeout / 8.
	HeartbeatInterval time.Duration
}

// defaults for the zero Params fields.
const (
	defaultStallWindow      = 5 * time.Second
	defaultSuspicionTimeout = 250 * time.Millisecond
)

// withDefaults resolves zero fields.
func (p Params) withDefaults() Params {
	if p.StallWindow <= 0 {
		p.StallWindow = defaultStallWindow
	}
	if p.SuspicionTimeout <= 0 {
		p.SuspicionTimeout = defaultSuspicionTimeout
	}
	if p.HeartbeatInterval <= 0 {
		p.HeartbeatInterval = p.SuspicionTimeout / 8
	}
	return p
}

// SetParams installs supervision parameters for the next Run; zero fields
// keep their defaults. Must be called before Run.
func (e *Engine) SetParams(p Params) { e.sup = p.withDefaults() }

// SupervisionParams returns the supervision parameters in force.
func (e *Engine) SupervisionParams() Params { return e.sup }

// ErrStalled marks a stall abort: no node completed an operation for a full
// stall window while unfinished nodes remained. Exposed for errors.Is.
var ErrStalled = errors.New("stalled")

// BlockedNode is one stuck node in a stall report: the node id and the
// dimension it was blocked receiving on (-1 for RecvAny).
type BlockedNode struct {
	Node uint64
	Dim  int
}

func (b BlockedNode) String() string {
	if b.Dim < 0 {
		return fmt.Sprintf("node %d blocked on recv(any dim)", b.Node)
	}
	return fmt.Sprintf("node %d blocked on recv(dim %d)", b.Node, b.Dim)
}

// StallError is the typed stall report: the live analogue of simnet's
// deadlock diagnosis. It unwraps to ErrStalled, and its Blocked list names
// every node stuck on a receive (ascending id), so callers can reach the
// blocked-node detail without parsing a formatted string.
type StallError struct {
	Window  time.Duration // the stall window that elapsed without progress
	Blocked []BlockedNode // every node blocked on a receive, ascending id
}

func (s *StallError) Error() string {
	const maxDetail = 8
	parts := make([]string, 0, maxDetail)
	for i, b := range s.Blocked {
		if i >= maxDetail {
			parts = append(parts, fmt.Sprintf("... and %d more", len(s.Blocked)-maxDetail))
			break
		}
		parts = append(parts, b.String())
	}
	return fmt.Sprintf("livenet: %v: no progress for %s; %d node(s) blocked on receive: %s",
		ErrStalled, s.Window, len(s.Blocked), strings.Join(parts, "; "))
}

func (s *StallError) Unwrap() error { return ErrStalled }
