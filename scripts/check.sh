#!/bin/sh
# Pre-PR gate: everything a change must pass before it is committed.
# Run from the repository root (directly or as `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/cubevet ./..."
go run ./cmd/cubevet ./...

echo "==> go test ./..."
go test ./...

# Fuzz corpora in regression mode: replay the checked-in seeds (no fuzzing).
echo "==> go test -run '^Fuzz' (fuzz seed regression)"
go test -run '^Fuzz' ./internal/plan/ ./internal/cube/ ./internal/service/ ./internal/remap/ .

# Smoke the fault sweep: robustness table on a 6-cube (survival under k
# random link failures per path system).
echo "==> experiments -exp fault-sweep (6-cube smoke)"
go run ./cmd/experiments -exp fault-sweep >/dev/null

# Smoke the recovery sweep: mid-run link kills across algorithms, every
# failed run checkpointed, resumed and verified element-exact.
echo "==> experiments -exp recovery-sweep (6-cube smoke)"
go run ./cmd/experiments -exp recovery-sweep >/dev/null

# Smoke the chaos sweep: k node crash-stops mid-run on both backends, every
# node-down failure recovered onto the survivors and verified element-exact.
# Gate on zero failed cells — crash-stop survival is an acceptance invariant.
echo "==> experiments -exp chaos-sweep (6-cube, both backends)"
go run ./cmd/experiments -exp chaos-sweep | awk '
	/^(SPT|DPT|MPT) / {
		rows++
		if ($6 + 0 != 0) {
			printf "check: chaos-sweep cell %s/%s k=%s has %s failed run(s)\n", $1, $2, $3, $6 > "/dev/stderr"
			bad = 1
		}
	}
	END {
		if (rows == 0) { print "check: chaos-sweep produced no rows" > "/dev/stderr"; exit 1 }
		if (bad) exit 1
		printf "check: chaos-sweep %d cells, zero failed runs\n", rows
	}'

# Resume determinism: the checkpoint/resume acceptance scenarios replayed
# twice — the resumed distribution must stay bit-identical to the unfaulted
# run on every repetition (plan-cache state must not leak into recovery).
echo "==> go test -run resume scenarios -count=2"
go test -run 'TestMPTResumeAfterMidRunLinkKills|TestExchangeResumeAfterMidRunKill|TestDeadlineAbortsAndResumes' -count=2 .

# Faulted soak: combined permanent + flaky faults on an 8-cube, replayed
# for determinism (part of the non-short suite; run explicitly here).
echo "==> go test -run TestSoakFaultedTranspose"
go test -run 'TestSoakFaultedTranspose' .

# Smoke the plan-cache benchmark pair (full measurement: `make bench`).
echo "==> go test -bench plan split -benchtime=1x"
go test -run '^$' -bench 'BenchmarkTransposeOneShot$|BenchmarkTransposeCompiled$' -benchtime=1x .

# Connection Machine scale smoke: a full 12-cube (4096 node) all-to-all,
# sharded vs serial, byte-identical Stats. The test skips itself under
# -short (so the race suite stays inside its timeout); run it loud here.
echo "==> go test -run TestCube12ShardedSmoke (12-cube sharded smoke)"
go test -run 'TestCube12ShardedSmoke' -count=1 ./internal/simnet/

# Engine bench smoke: regenerate BENCH_engine.json (scheduler pair, sharded
# pair, 16-cube scale row, crossover rows, sweep wall-clock) and gate on the
# indexed scheduler not regressing below the linear-scan reference and the
# sharded scheduler not regressing below the serial one.
echo "==> scripts/bench_engine.sh (BENCH_COUNT=1x smoke)"
BENCH_COUNT=1x CUBE16_COUNT=1x ./scripts/bench_engine.sh
awk -F'[:,]' '/"scheduler_speedup"/ {
	if ($2 + 0 < 1.0) {
		printf "check: scheduler speedup %.2f below 1.0x — indexed scheduler regressed\n", $2 > "/dev/stderr"
		exit 1
	}
	printf "check: scheduler speedup %.2fx (>= 1.0x gate)\n", $2
}' BENCH_engine.json
awk -F'[:,]' '/"sharded_speedup"/ {
	if ($2 + 0 < 1.0) {
		printf "check: sharded speedup %.2f below 1.0x — epoch scheduler regressed\n", $2 > "/dev/stderr"
		exit 1
	}
	printf "check: sharded speedup %.2fx (>= 1.0x gate)\n", $2
}' BENCH_engine.json
awk '/"cube16_ns_per_op"/ { c16 = 1 } /"bytes_per_node"/ { bpn = 1 } /"cm_crossover"/ { xo = 1 }
END {
	if (!c16 || !bpn || !xo) {
		print "check: BENCH_engine.json missing 16-cube scale row or crossover rows" > "/dev/stderr"
		exit 1
	}
	print "check: 16-cube row, bytes_per_node and cm_crossover rows present"
}' BENCH_engine.json
awk -F'[:,]' '/"checkpoint_overhead_pct"/ {
	if ($2 + 0 >= 3.0) {
		printf "check: checkpoint overhead %.2f%% at or above the 3%% budget\n", $2 > "/dev/stderr"
		exit 1
	}
	printf "check: checkpoint overhead %.2f%% (< 3%% gate)\n", $2
}' BENCH_engine.json

# Smoke the service sweep: the multi-tenant scheduler under open-loop
# Poisson load at three offered rates, every job verified element-exact.
echo "==> experiments -exp service-sweep (6-cube smoke)"
go run ./cmd/experiments -exp service-sweep >/dev/null

# Service bench: regenerate BENCH_service.json (mixed-burst throughput and
# latency percentiles, plus the identical-request batching pair) and gate
# on batching actually beating the unbatched control — the core throughput
# claim of the multi-tenant scheduler.
echo "==> scripts/bench_service.sh (BENCH_COUNT=1x smoke)"
BENCH_COUNT=1x ./scripts/bench_service.sh
awk -F'[:,]' '/"batched_speedup"/ {
	if ($2 + 0 <= 1.0) {
		printf "check: batching speedup %.2fx not above 1.0x — batched rounds regressed\n", $2 > "/dev/stderr"
		exit 1
	}
	printf "check: batching speedup %.2fx (> 1.0x gate)\n", $2
}' BENCH_service.json

# Backend parity smoke: the same compiled plans replayed on the simnet
# simulation and the livenet goroutine transport must agree element-exactly
# and on logical stats, including the checkpoint/resume round-trip.
echo "==> go test -run TestBackendParity -short (backend parity smoke)"
go test -run 'TestBackendParity' -short -count=1 .

# Fabric bench: regenerate BENCH_fabric.json (simnet host + virtual time vs
# livenet wall-clock on the compiled 8-cube SBnT plan) and gate on the
# artifact existing — a PR must not land without the backend comparison.
echo "==> scripts/bench_fabric.sh (BENCH_COUNT=1x smoke)"
BENCH_COUNT=1x ./scripts/bench_fabric.sh
test -s BENCH_fabric.json || {
	echo "check: BENCH_fabric.json missing or empty" >&2
	exit 1
}

# -short skips the exper figure sweeps, which exceed the per-package test
# timeout under the race detector; they exercise no concurrency the short
# suite doesn't. `make race` runs the full sweep with a raised timeout.
echo "==> go test -race -short ./... (SIMNET_DEBUG=1)"
SIMNET_DEBUG=1 go test -race -short ./...

echo "check: all gates passed"
