// Package ignorereason exercises the ignorereason pass: every
// //cubevet:ignore directive must justify itself with "-- reason"; bare
// directives still suppress their target pass but are themselves flagged,
// and only a reasoned directive can silence that flag.
package ignorereason

// BareNamed suppresses shiftwidth without saying why: flagged.
func BareNamed(x uint64, n int) uint64 {
	return x << n //cubevet:ignore shiftwidth
}

// BareAll suppresses every pass without saying why: flagged, but the
// reasoned directive above it silences the ignorereason finding (the
// grandfathering idiom for legacy annotations).
func BareAll(x uint64, n int) uint64 {
	//cubevet:ignore ignorereason -- fixture: legacy directive kept verbatim below
	return x << n //cubevet:ignore
}

// Reasoned carries a justification: clean.
func Reasoned(x uint64, n int) uint64 {
	return x << n //cubevet:ignore shiftwidth -- fixture: caller clamps n below the word size
}
