package livenet

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"boolcube/internal/fabric"
	"boolcube/internal/machine"
)

// Node is the per-processor handle of the live transport: one real
// goroutine per cube node. It implements fabric.Node; its methods may only
// be called from within the program function passed to Run, on the node's
// own goroutine.
type Node struct {
	id  uint64
	eng *Engine

	// Inbound queues, one FIFO per dimension, guarded by mu; cond is
	// signaled on every delivery and on abort. Queues are unbounded — like
	// the simulation, Send never blocks on the receiver — so the port
	// semaphores are the only admission control.
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]arrival
	waiting bool // blocked in Recv/RecvAny (stall diagnosis)
	waitDim int  // dimension waited on; -1 for RecvAny

	// sendSem holds the node's send-port tokens: one semaphore total on a
	// one-port machine, one per dimension with n-port communication. A send
	// holds its port (and the directed link's semaphore) for the duration
	// of the handoff.
	sendSem []chan struct{}

	// Crash-stop state (crash.go): crashed is set and crashCh closed when
	// the node's kill timer fires; every blocking point observes them and
	// unwinds with the crash sentinel. finished marks a program that
	// returned (past harm); lastBeat is the heartbeat stamp (µs since Run)
	// the failure detector samples.
	crashed  atomic.Bool
	crashCh  chan struct{}
	finished atomic.Bool
	lastBeat atomic.Int64

	failure error
}

// ID returns the node's cube address.
func (nd *Node) ID() uint64 { return nd.id }

// Dims returns the cube dimension n.
func (nd *Node) Dims() int { return nd.eng.n }

// Nodes returns the node count N.
func (nd *Node) Nodes() int { return nd.eng.nodesCount }

// Clock returns wall-clock µs since Run started.
func (nd *Node) Clock() float64 { return nd.eng.now() }

// Params returns the machine model in force.
func (nd *Node) Params() machine.Params { return nd.eng.params }

// Neighbor returns the node's neighbor across dimension d.
func (nd *Node) Neighbor(d int) uint64 {
	nd.checkDim(d)
	return nd.id ^ 1<<uint(d)
}

// nodeAbort unwinds a node goroutine on a typed failure; the goroutine
// wrapper recovers it and surfaces err as the program's failure.
type nodeAbort struct{ err error }

// Fail aborts the node's program with a typed error: the engine unwinds
// every node and Run returns err as-is.
func (nd *Node) Fail(err error) {
	if err == nil {
		panic("livenet: Fail(nil)")
	}
	panic(&nodeAbort{err: err}) //cubevet:ignore liberrors -- typed unwind, recovered by the engine wrapper
}

// checkAbort unwinds the node when it has crash-stopped or the engine has
// already failed.
func (nd *Node) checkAbort() {
	if nd.crashed.Load() {
		panic(errCrashed) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
	}
	if nd.eng.aborted.Load() {
		panic(errPoisoned) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
	}
}

func (nd *Node) checkDim(d int) {
	if d < 0 || d >= nd.eng.n {
		panic(fmt.Sprintf("livenet: node %d: dimension %d out of range [0,%d)", nd.id, d, nd.eng.n))
	}
}

// acquire takes a cap-1 semaphore, unwinding on crash-stop or engine abort
// so a token holder that died cannot wedge its peers forever.
func (nd *Node) acquire(sem chan struct{}) {
	select {
	case sem <- struct{}{}:
	case <-nd.crashCh:
		panic(errCrashed) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
	case <-nd.eng.abortCh:
		panic(errPoisoned) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
	}
}

// sleep pauses the node's program for dt µs of real time, unwinding early
// on crash-stop or engine abort so a sleeping node cannot outlive the run.
func (nd *Node) sleep(dt float64) {
	if dt <= 0 {
		return
	}
	t := time.NewTimer(time.Duration(dt * float64(time.Microsecond)))
	defer t.Stop()
	select {
	case <-t.C:
	case <-nd.crashCh:
		panic(errCrashed) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
	case <-nd.eng.abortCh:
		panic(errPoisoned) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
	}
}

// Send transmits m to the neighbor across dimension dim, transferring
// ownership of the message's buffers. An injected failure past the retry
// budget aborts the program with the typed *fabric.FaultError.
func (nd *Node) Send(dim int, m fabric.Msg) {
	if err := nd.TrySend(dim, m); err != nil {
		panic(&nodeAbort{err: err}) //cubevet:ignore liberrors -- typed unwind, recovered by the engine wrapper
	}
}

// TrySend is Send, but an injected failure (link down past the retry
// budget, every retransmission dropped) is returned as a *fabric.FaultError
// instead of aborting the program. The retry/backoff budget has been
// consumed in real time when TrySend returns.
func (nd *Node) TrySend(dim int, m fabric.Msg) error {
	nd.checkDim(dim)
	nd.checkAbort()
	e := nd.eng
	bytes := len(m.Data) * e.params.ElemBytes
	_, startups := e.params.SendTime(bytes)
	li := e.linkIndex(nd.id, dim)

	if e.faults != nil {
		if err := nd.clearFaults(dim, li, bytes, startups); err != nil {
			e.faulted.Add(1)
			return err
		}
	}

	// Port-model admission: hold the send port and the directed link for
	// the handoff. Each directed link has a single sender, so the link
	// token formalizes wire exclusivity rather than arbitrating peers.
	port := e.portIndex(dim)
	nd.acquire(nd.sendSem[port])
	nd.acquire(e.linkSem[li])
	now := e.now()
	e.chargeLink(li, bytes, startups)
	e.sends.Add(1)
	seq := e.seq.Add(1)

	dest := e.nodes[nd.id^1<<uint(dim)]
	dest.mu.Lock()
	dest.queues[dim] = append(dest.queues[dim], arrival{msg: m, seq: seq})
	dest.cond.Broadcast()
	dest.mu.Unlock()

	<-e.linkSem[li]
	<-nd.sendSem[port]
	e.trace(fabric.TraceEvent{Node: nd.id, Kind: "send", Dim: dim, Bytes: bytes, Start: now, End: e.now()})
	e.progress.Add(1)
	return nil
}

// clearFaults runs the transmission attempt loop under fault injection,
// mirroring the simulation's semantics on the wall clock: transient
// link-down windows are waited out in real time and flaky drops
// retransmitted after the backoff, each consuming one attempt of the retry
// budget; a dropped frame still occupied the wire and is charged to the
// volume statistics. Returns nil when an attempt went through, or the
// typed *fabric.FaultError once the budget is exhausted.
func (nd *Node) clearFaults(dim, li, bytes, startups int) error {
	e := nd.eng
	attempts := 0
	for {
		attempts++
		now := e.now()
		up, nextUp := e.faults.LinkState(nd.id, dim, now)
		if !up {
			e.trace(fabric.TraceEvent{Node: nd.id, Kind: "drop", Dim: dim, Start: now, End: now,
				Attempt: attempts, DownUntil: nextUp})
			if math.IsInf(nextUp, 1) || attempts >= e.retry.Attempts {
				return &fabric.FaultError{From: nd.id, To: nd.id ^ 1<<uint(dim), Dim: dim,
					At: now, Attempts: attempts, Err: fabric.ErrLinkDown}
			}
			e.retries.Add(1)
			wait := e.retry.Backoff
			if d := nextUp - now; d > wait {
				wait = d
			}
			nd.sleep(wait)
			continue
		}
		nd.checkAbort()
		e.linkAttempts[li]++
		if !e.faults.Drop(nd.id, dim, e.linkAttempts[li]) {
			return nil
		}
		// The dropped frame still occupied the wire: charge the volume
		// statistics, then retransmit after the backoff.
		e.chargeLink(li, bytes, startups)
		e.drops.Add(1)
		e.trace(fabric.TraceEvent{Node: nd.id, Kind: "drop", Dim: dim, Bytes: bytes, Start: now, End: e.now(),
			Attempt: attempts})
		if attempts >= e.retry.Attempts {
			return &fabric.FaultError{From: nd.id, To: nd.id ^ 1<<uint(dim), Dim: dim,
				At: now, Attempts: attempts, Err: fabric.ErrRetryBudget}
		}
		e.retries.Add(1)
		nd.sleep(e.retry.Backoff)
	}
}

// chargeLink books one transmission's volume on the directed link and the
// global counters. Shared by delivered sends and dropped frames, exactly
// like the simulation's accounting.
func (e *Engine) chargeLink(li, bytes, startups int) {
	e.linkBytes[li] += int64(bytes)
	e.linkUsed[li] = true
	e.startups.Add(int64(startups))
	e.bytes.Add(int64(bytes))
}

// Recv blocks until a message arrives from the neighbor across dimension
// dim and returns it (FIFO per link).
func (nd *Node) Recv(dim int) fabric.Msg {
	nd.checkDim(dim)
	nd.mu.Lock()
	for len(nd.queues[dim]) == 0 {
		if nd.crashed.Load() {
			nd.mu.Unlock()
			panic(errCrashed) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
		}
		if nd.eng.aborted.Load() {
			nd.mu.Unlock()
			panic(errPoisoned) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
		}
		nd.waiting, nd.waitDim = true, dim
		nd.cond.Wait()
	}
	nd.waiting = false
	a := nd.queues[dim][0]
	nd.queues[dim][0] = arrival{}
	nd.queues[dim] = nd.queues[dim][1:]
	nd.mu.Unlock()
	return nd.finishRecv(a, dim)
}

// RecvAny blocks until a message is available on any dimension and returns
// the earliest-sent one (by global send sequence).
func (nd *Node) RecvAny() fabric.Msg {
	nd.mu.Lock()
	for {
		bestDim := -1
		var bestSeq int64
		for d := range nd.queues {
			if len(nd.queues[d]) == 0 {
				continue
			}
			if s := nd.queues[d][0].seq; bestDim == -1 || s < bestSeq {
				bestDim, bestSeq = d, s
			}
		}
		if bestDim >= 0 {
			nd.waiting = false
			a := nd.queues[bestDim][0]
			nd.queues[bestDim][0] = arrival{}
			nd.queues[bestDim] = nd.queues[bestDim][1:]
			nd.mu.Unlock()
			return nd.finishRecv(a, bestDim)
		}
		if nd.crashed.Load() {
			nd.mu.Unlock()
			panic(errCrashed) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
		}
		if nd.eng.aborted.Load() {
			nd.mu.Unlock()
			panic(errPoisoned) //cubevet:ignore liberrors -- control-flow sentinel, recovered by the engine wrapper
		}
		nd.waiting, nd.waitDim = true, -1
		nd.cond.Wait()
	}
}

// finishRecv audits and traces one delivered message. The transport-level
// audit is always on: a whole-payload checksum stamped at injection must
// match on delivery, or the run aborts with a typed *fabric.AuditError.
func (nd *Node) finishRecv(a arrival, dim int) fabric.Msg {
	nd.checkAbort()
	m := a.msg
	if m.Sum != 0 {
		if got := fabric.Checksum(m.Data); got != m.Sum {
			nd.Fail(&fabric.AuditError{Node: nd.id, Src: m.Src, Dst: m.Dst,
				What: "transport delivery", Want: m.Sum, Got: got})
		}
	}
	e := nd.eng
	now := e.now()
	e.trace(fabric.TraceEvent{Node: nd.id, Kind: "recv", Dim: dim,
		Bytes: len(m.Data) * e.params.ElemBytes, Start: now, End: now})
	e.progress.Add(1)
	return m
}

// Exchange sends m across dim and receives the partner's message from the
// same dimension.
func (nd *Node) Exchange(dim int, m fabric.Msg) fabric.Msg {
	nd.Send(dim, m)
	return nd.Recv(dim)
}

// Copy charges the logical volume of a local copy of b bytes. No real time
// is spent: copy cost is a virtual-model concept (CopyTime stays 0 and is
// stripped by Stats.Logical), but the byte count is part of the logical
// statistics both backends agree on.
func (nd *Node) Copy(b int) {
	if b < 0 {
		panic(fmt.Sprintf("livenet: negative copy size %d", b))
	}
	nd.checkAbort()
	nd.eng.copyBytes.Add(int64(b))
	nd.eng.progress.Add(1)
}

// CopyElems charges the copy volume of k matrix elements.
func (nd *Node) CopyElems(k int) {
	nd.Copy(k * nd.eng.params.ElemBytes)
}

// Advance sleeps dt µs of real time — the live interpretation of "the node
// computes for dt µs".
func (nd *Node) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("livenet: negative time advance %v", dt))
	}
	nd.checkAbort()
	nd.sleep(dt)
	nd.eng.progress.Add(1)
}

// AllocData returns a payload buffer of length n. Livenet does not pool:
// buffers cross real goroutines, so they go to the garbage collector, and
// Recycle is a no-op.
func (nd *Node) AllocData(n int) []float64 { return make([]float64, n) }

// AllocParts returns a Parts buffer of length n (not pooled; see AllocData).
func (nd *Node) AllocParts(n int) []fabric.Part { return make([]fabric.Part, n) }

// Recycle is a no-op: livenet buffers are garbage-collected. The ownership
// contract still applies — callers must not touch a recycled message's
// buffers, so programs stay portable to pooling backends.
func (nd *Node) Recycle(m fabric.Msg) {}
