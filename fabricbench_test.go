package boolcube

import "testing"

// The fabric benchmark pair: one compiled 8-cube SBnT all-to-all plan,
// replayed on both registered backends. The simnet run measures how fast
// the host simulates the transpose (its Stats.Time is the virtual time the
// machine model predicts); the livenet run measures a real 256-goroutine
// transpose end to end (its Stats.Time is wall-clock elapsed). Both report
// Stats.Time as the custom metric stats-us/op so scripts/bench_fabric.sh
// can put model time and wall time side by side in BENCH_fabric.json.

func benchFabricSetup(b *testing.B) (*CompiledTranspose, *Dist, *Matrix) {
	b.Helper()
	p, q, n := 8, 8, 8
	before := TwoDimConsecutive(p, q, n/2, n/2, Binary)
	after := TwoDimConsecutive(q, p, n/2, n/2, Binary)
	m := NewIotaMatrix(p, q)
	ct, err := Compile(before, after, Options{Algorithm: SBnT, Machine: IPSCNPort()})
	if err != nil {
		b.Fatal(err)
	}
	return ct, Scatter(m, before), m
}

func benchFabric(b *testing.B, backend string) {
	ct, d, m := benchFabricSetup(b)
	statsUs := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ct.ExecuteWith(d, ExecOptions{Backend: backend})
		if err != nil {
			b.Fatal(err)
		}
		statsUs = res.Stats.Time
		if i == 0 {
			b.StopTimer()
			if err := res.Dist.Verify(m.Transposed()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.ReportMetric(statsUs, "stats-us/op")
}

func BenchmarkFabricSimnet8Cube(b *testing.B)  { benchFabric(b, "simnet") }
func BenchmarkFabricLivenet8Cube(b *testing.B) { benchFabric(b, "livenet") }
