package core

import (
	"fmt"
	"testing"

	"boolcube/internal/field"
	"boolcube/internal/machine"
	"boolcube/internal/matrix"
)

// All four encoding combinations of Section 6.3, both algorithms, verified
// element-exactly.
func TestTransposeMixed(t *testing.T) {
	p, q, n := 4, 4, 4
	encs := []struct{ br, bc, ar, ac field.Encoding }{
		{field.Binary, field.Gray, field.Binary, field.Gray},     // §6.3 main case
		{field.Gray, field.Binary, field.Gray, field.Binary},     // symmetric
		{field.Binary, field.Binary, field.Gray, field.Gray},     // bin -> transposed gray
		{field.Gray, field.Gray, field.Binary, field.Binary},     // gray -> transposed bin
		{field.Binary, field.Binary, field.Binary, field.Binary}, // degenerate: pure transpose
	}
	algos := []struct {
		name string
		f    func(*matrix.Dist, field.Layout, Options) (*Result, error)
	}{
		{"naive", TransposeMixedNaive},
		{"combined", TransposeMixedCombined},
	}
	for _, ec := range encs {
		for _, a := range algos {
			name := fmt.Sprintf("%s %v%v->%v%v", a.name, ec.br, ec.bc, ec.ar, ec.ac)
			before := field.TwoDimEncoded(p, q, n/2, n/2, ec.br, ec.bc)
			after := field.TwoDimEncoded(q, p, n/2, n/2, ec.ar, ec.ac)
			m := matrix.NewIota(p, q)
			d := matrix.Scatter(m, before)
			res, err := a.f(d, after, opts(machine.IPSC()))
			verifyTranspose(t, name, m, res, err)
		}
	}
}

// The combined algorithm must use at most n routing steps per payload; the
// naive one up to 2n-2. On a start-up-dominated machine the combined
// algorithm therefore wins (Figure 15).
func TestMixedCombinedBeatsNaive(t *testing.T) {
	p, q, n := 5, 5, 6
	mach := machine.IPSC() // τ-dominated for small blocks
	before := field.TwoDimEncoded(p, q, n/2, n/2, field.Binary, field.Gray)
	after := field.TwoDimEncoded(q, p, n/2, n/2, field.Binary, field.Gray)
	m := matrix.NewIota(p, q)

	d1 := matrix.Scatter(m, before)
	naive, err := TransposeMixedNaive(d1, after, opts(mach))
	if err != nil {
		t.Fatal(err)
	}
	d2 := matrix.Scatter(m, before)
	combined, err := TransposeMixedCombined(d2, after, opts(mach))
	if err != nil {
		t.Fatal(err)
	}
	if combined.Stats.Time >= naive.Stats.Time {
		t.Errorf("combined (%v) not faster than naive (%v)",
			combined.Stats.Time, naive.Stats.Time)
	}
}

func TestMixedRejectsNonPermutation(t *testing.T) {
	// A 1-D layout pair is all-to-all, not a node permutation.
	before := field.OneDimConsecutiveRows(4, 4, 2, field.Binary)
	after := field.OneDimConsecutiveRows(4, 4, 2, field.Binary)
	d := matrix.Scatter(matrix.NewIota(4, 4), before)
	if _, err := TransposeMixedCombined(d, after, opts(machine.IPSC())); err == nil {
		t.Error("non-permutation accepted")
	}
}
