package cube

import (
	"fmt"

	"boolcube/internal/bits"
)

// Tree is a spanning tree of the cube rooted at Root. Parent[x] is the
// parent node of x (Parent[Root] = -1); Children lists each node's children.
type Tree struct {
	Cube     Cube
	Root     uint64
	Parent   []int64
	Children [][]uint64
}

// newTreeFromParent builds the Children lists and validates that parent
// pointers define a spanning tree over all N nodes.
func newTreeFromParent(c Cube, root uint64, parent []int64) *Tree {
	t := &Tree{Cube: c, Root: root, Parent: parent, Children: make([][]uint64, c.Nodes())}
	for x := 0; x < c.Nodes(); x++ {
		p := parent[x]
		if p < 0 {
			continue
		}
		t.Children[p] = append(t.Children[p], uint64(x))
	}
	return t
}

// Depth returns the depth of node x in the tree (root depth 0).
func (t *Tree) Depth(x uint64) int {
	d := 0
	for t.Parent[x] >= 0 {
		x = uint64(t.Parent[x])
		d++
		if d > t.Cube.Nodes() {
			panic("cube: parent cycle in tree")
		}
	}
	return d
}

// PathFromRoot returns the dimension sequence from the root to node x.
func (t *Tree) PathFromRoot(x uint64) []int {
	var rev []int
	for t.Parent[x] >= 0 {
		p := uint64(t.Parent[x])
		rev = append(rev, dimBetween(p, x))
		x = p
	}
	dims := make([]int, len(rev))
	for i := range rev {
		dims[i] = rev[len(rev)-1-i]
	}
	return dims
}

// SubtreeSize returns the number of nodes in the subtree rooted at x
// (including x).
func (t *Tree) SubtreeSize(x uint64) int {
	s := 1
	for _, ch := range t.Children[x] {
		s += t.SubtreeSize(ch)
	}
	return s
}

func dimBetween(a, b uint64) int {
	d := a ^ b
	if d == 0 || d&(d-1) != 0 {
		panic(fmt.Sprintf("cube: nodes %b and %b are not adjacent", a, b))
	}
	dim := 0
	for d > 1 {
		d >>= 1
		dim++
	}
	return dim
}

// SBT returns the spanning binomial tree rooted at root. In relative
// address space (y = x XOR root), the parent of y != 0 is obtained by
// clearing its highest-order set bit; equivalently the children of y are
// obtained by complementing one of its leading zeroes [17,2,5].
func SBT(c Cube, root uint64) *Tree {
	parent := make([]int64, c.Nodes())
	for x := 0; x < c.Nodes(); x++ {
		y := uint64(x) ^ root
		if y == 0 {
			parent[x] = -1
			continue
		}
		hb := highestSetBit(y)
		parent[x] = int64((y ^ 1<<uint(hb)) ^ root)
	}
	return newTreeFromParent(c, root, parent)
}

// ReflectedSBT returns the reflection of the SBT (Definition 9): addresses
// bit-reversed, equivalently children obtained by complementing trailing
// zeroes instead of leading zeroes.
func ReflectedSBT(c Cube, root uint64) *Tree {
	parent := make([]int64, c.Nodes())
	for x := 0; x < c.Nodes(); x++ {
		y := uint64(x) ^ root
		if y == 0 {
			parent[x] = -1
			continue
		}
		lb := lowestSetBit(y)
		parent[x] = int64((y ^ 1<<uint(lb)) ^ root)
	}
	return newTreeFromParent(c, root, parent)
}

// RotatedSBT returns the SBT rotated by k shuffle steps (Definition 8): all
// relative addresses are mapped through sh^k before applying the SBT parent
// rule. k = 0 gives the plain SBT.
func RotatedSBT(c Cube, root uint64, k int) *Tree {
	n := c.Dims()
	parent := make([]int64, c.Nodes())
	for x := 0; x < c.Nodes(); x++ {
		y := uint64(x) ^ root
		if y == 0 {
			parent[x] = -1
			continue
		}
		// Rotate into canonical space, take the SBT parent, rotate back.
		yr := bits.RotR(y, k, n)
		hb := highestSetBit(yr)
		pr := yr ^ 1<<uint(hb)
		parent[x] = int64(bits.RotL(pr, k, n) ^ root)
	}
	return newTreeFromParent(c, root, parent)
}

// Translate returns the tree rooted at s obtained by translating t (rooted
// at 0 or anywhere): node x of the new tree corresponds to node x XOR s XOR
// t.Root of t (Section 3.2).
func Translate(t *Tree, s uint64) *Tree {
	c := t.Cube
	shift := s ^ t.Root
	parent := make([]int64, c.Nodes())
	for x := 0; x < c.Nodes(); x++ {
		old := uint64(x) ^ shift
		if t.Parent[old] < 0 {
			parent[x] = -1
			continue
		}
		parent[x] = int64(uint64(t.Parent[old]) ^ shift)
	}
	return newTreeFromParent(c, s, parent)
}

// SBnTPath returns the dimension routing order from a source node to the
// node at relative address r != 0 under spanning balanced n-tree routing:
// the set bits of r visited in ascending cyclic order starting at base(r),
// the rotation that minimizes the rotated value of r (Section 5's SBnT
// transpose pseudo code). Distinct relative addresses with distinct bases
// leave the source on distinct ports, balancing the n ports.
func SBnTPath(r uint64, n int) []int {
	if r == 0 {
		return nil
	}
	b := bits.Base(r, n)
	var dims []int
	for i := 0; i < n; i++ {
		d := (b + i) % n
		if bits.Bit(r, d) == 1 {
			dims = append(dims, d)
		}
	}
	return dims
}

// SBnT returns the spanning balanced n-tree rooted at root, built from the
// SBnTPath routing rule: the parent of node x is the next-to-last node on
// the path from the root to x.
func SBnT(c Cube, root uint64) *Tree {
	n := c.Dims()
	parent := make([]int64, c.Nodes())
	parent[root] = -1
	for x := 0; x < c.Nodes(); x++ {
		r := uint64(x) ^ root
		if r == 0 {
			continue
		}
		dims := SBnTPath(r, n)
		last := dims[len(dims)-1]
		parent[x] = int64(bits.FlipBit(uint64(x), last))
	}
	return newTreeFromParent(c, root, parent)
}

func highestSetBit(y uint64) int {
	hb := -1
	for i := 0; y != 0; i++ {
		if y&1 == 1 {
			hb = i
		}
		y >>= 1
	}
	return hb
}

func lowestSetBit(y uint64) int {
	for i := 0; ; i++ {
		if y>>uint(i)&1 == 1 {
			return i
		}
	}
}
