package cost_test

import (
	"fmt"
	"testing"

	"boolcube/internal/core"
	"boolcube/internal/field"
	"boolcube/internal/machine"
	"boolcube/internal/matrix"
	"boolcube/internal/plan"
)

// driftCase runs one compiled transpose and returns simulated/predicted.
func driftCase(t *testing.T, alg plan.Algorithm, mach machine.Params,
	before, after field.Layout, p, q int) float64 {
	t.Helper()
	pl, err := plan.Compile(alg, before, after, plan.Config{Machine: mach})
	if err != nil {
		t.Fatal(err)
	}
	predicted := pl.PredictedCost()
	if predicted <= 0 {
		t.Fatalf("predicted cost %v, want > 0", predicted)
	}
	m := matrix.NewIota(p, q)
	res, err := core.Execute(pl, matrix.Scatter(m, before), nil)
	if err != nil {
		t.Fatal(err)
	}
	if verr := res.Dist.Verify(m.Transposed()); verr != nil {
		t.Fatal(verr)
	}
	ratio := res.Stats.Time / predicted
	t.Logf("simulated %.1f µs, predicted %.1f µs, ratio %.3f",
		res.Stats.Time, predicted, ratio)
	return ratio
}

// The paper's AllToAllExchange estimate is written for the one-dimensional
// row-block all-to-all it analyzes; on that layout the simulation realizes
// the formula essentially exactly, so any drift here means the predictor
// and the executor have diverged from the shared plan IR.
func TestExchangePredictionExactOneDim(t *testing.T) {
	const factor = 1.1
	mach := machine.IPSC()
	for _, sh := range []struct{ p, q, n int }{
		{4, 4, 4}, {5, 5, 4}, {6, 6, 6}, {7, 7, 6},
	} {
		t.Run(fmt.Sprintf("p%dq%dn%d", sh.p, sh.q, sh.n), func(t *testing.T) {
			before := field.OneDimConsecutiveRows(sh.p, sh.q, sh.n, field.Binary)
			after := field.OneDimConsecutiveRows(sh.q, sh.p, sh.n, field.Binary)
			ratio := driftCase(t, plan.Exchange, mach, before, after, sh.p, sh.q)
			if ratio > factor || ratio < 1/factor {
				t.Errorf("simulated/predicted ratio %.3f outside [%.2f, %.2f]",
					ratio, 1/factor, factor)
			}
		})
	}
}

// Across two-dimensional consecutive layouts the closed forms are
// approximations (the 2-D exchange moves different volumes, and the SBnT
// executor pays per-hop start-ups the bundled pseudocode amortizes), but
// the paper's models still track the simulation within a factor of 2 —
// the accuracy the predictor needs for AlgorithmAuto to pick sanely.
func TestPredictionTracksSimulation(t *testing.T) {
	const factor = 2.0
	cases := []struct {
		alg  plan.Algorithm
		mach machine.Params
	}{
		{plan.Exchange, machine.IPSC()},
		{plan.SBnT, machine.IPSC()},
		{plan.SBnT, machine.IPSCNPort()},
	}
	shapes := []struct{ p, q, n int }{
		{4, 4, 4}, {5, 5, 4}, {6, 6, 4}, {6, 6, 6},
	}
	for _, c := range cases {
		for _, sh := range shapes {
			name := fmt.Sprintf("%s/%s/p%dq%dn%d", c.alg, c.mach.Name, sh.p, sh.q, sh.n)
			t.Run(name, func(t *testing.T) {
				before := field.TwoDimConsecutive(sh.p, sh.q, sh.n/2, sh.n/2, field.Binary)
				after := field.TwoDimConsecutive(sh.q, sh.p, sh.n/2, sh.n/2, field.Binary)
				ratio := driftCase(t, c.alg, c.mach, before, after, sh.p, sh.q)
				if ratio > factor || ratio < 1/factor {
					t.Errorf("simulated/predicted ratio %.3f outside [%.2f, %.2f]",
						ratio, 1/factor, factor)
				}
			})
		}
	}
}
