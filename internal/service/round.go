package service

import (
	"errors"
	"fmt"
	"math"

	"boolcube/internal/core"
	"boolcube/internal/fabric"
	"boolcube/internal/matrix"
	"boolcube/internal/plan"
	"boolcube/internal/remap"
	"boolcube/internal/router"
)

// span is one source-routed transfer a unit still owes: the [off, off+len)
// range of the (src, dst) canonical payload, the dimension path it follows,
// and its pipelining grain. Spans are the unit's residual move-set in
// executable form; a failed round rebuilds them from the delivery record.
type span struct {
	src, dst uint64
	off, ln  int
	dims     []int
	packets  int
}

// unit is one execution unit of a round: a batch of jobs sharing a compiled
// plan and a source distribution, their shared destination arrays, delivery
// record, accrued cost, attempt count and the tightest deadline budget in
// the batch. jobs[0] is the leader — it receives the real arrays; followers
// receive deep copies.
type unit struct {
	jobs []*Job
	p    *plan.Plan
	src  *matrix.Dist

	loc      [][]float64     // after-side local arrays, len = after.N()
	del      *plan.Delivered // spans already placed in loc
	stats    fabric.Stats    // cost accrued across this unit's rounds
	attempts int
	budget   float64  // remaining deadline budget, µs (+Inf = none)
	spans    []span   // residual network transfers
	dead     []uint64 // crash casualties accumulated across this unit's rounds, ascending
}

// budgetOf maps a job's deadline to a budget (+Inf when unset).
func budgetOf(j *Job) float64 {
	if j.spec.Deadline > 0 {
		return j.spec.Deadline
	}
	return math.Inf(1)
}

// newUnit builds a fresh execution unit for one job: allocates the
// destination arrays, places the src == dst self pairs host-side (they
// never cross a link, so even a failed first round checkpoints with them
// durable — the same discipline the dedicated executors use), and derives
// the network spans. Flow plans keep their compiled path-system routes and
// packetization; exchange and mixed-program plans execute their canonical
// move-set over dimension-order direct routes, exactly as checkpoint
// resume replays residuals.
func newUnit(j *Job, packets int) *unit {
	p := j.plan
	after := p.After()
	mv := p.Moves()
	u := &unit{
		jobs:   []*Job{j},
		p:      p,
		src:    j.spec.Src,
		loc:    make([][]float64, after.N()),
		del:    plan.NewDelivered(),
		budget: budgetOf(j),
	}
	for i := range u.loc {
		u.loc[i] = make([]float64, after.LocalSize())
	}
	for dp := 0; dp < after.N(); dp++ {
		if dp < u.src.Layout.N() {
			self := mv.Gather(uint64(dp), u.src.Local[dp], uint64(dp))
			mv.Scatter(uint64(dp), u.loc[dp], uint64(dp), self)
			u.del.Add(uint64(dp), uint64(dp), 0, len(self))
		}
	}
	if p.Kind() == plan.KindFlow {
		for _, f := range p.Flows() {
			u.spans = append(u.spans, span{
				src: f.Src, dst: f.Dst, off: f.Off, ln: f.Len,
				dims: f.Dims, packets: f.Packets,
			})
		}
		return u
	}
	u.rebuildSpans(packets)
	return u
}

// rebuildSpans recomputes the unit's network spans from the residual
// move-set (everything the delivery record does not cover), routing each
// residual dimension-order. Self-pair residuals are replayed host-side on
// the spot. Called at unit creation (non-flow plans) and after every
// partially delivered round.
func (u *unit) rebuildSpans(packets int) {
	if packets <= 0 {
		packets = u.p.Config().Packets
	}
	mv := u.p.Moves()
	u.spans = u.spans[:0]
	for _, r := range u.p.Remaining(u.del) {
		if r.Src == r.Dst {
			id := r.Src
			if id < uint64(len(u.src.Local)) && u.loc[id] != nil {
				data := mv.GatherRange(id, u.src.Local[id], id, r.Off, r.Len)
				mv.ScatterRange(id, u.loc[id], id, r.Off, data)
			}
			u.del.Add(id, id, r.Off, r.Len)
			continue
		}
		u.spans = append(u.spans, span{
			src: r.Src, dst: r.Dst, off: r.Off, ln: r.Len,
			dims: router.Ecube(r.Src, r.Dst, u.p.NDims()), packets: packets,
		})
	}
}

// pair keys the per-(dst, src) delivery FIFOs of a merged round.
type pair struct{ dst, src uint64 }

// runRound executes one round: the union of every unit's spans as one flow
// set on one fresh engine. This is where multi-tenancy becomes physical —
// co-scheduled units' packets contend for the same links, and the round's
// deadline is the tightest remaining budget among its jobs. On success every
// unit completes; on a deadline abort the binding units fail with per-job
// checkpoints while the others absorb the round's partial progress, shrink
// their budgets by the round's makespan, and re-queue for an automatic
// residual resume.
//
// Under the service's fault view, rounds survive dead hardware: a unit
// whose transfers start or end on a dead or quarantined node is relabeled
// onto survivors (internal/remap — spare substitution or a Gray-preserving
// fold), residual payloads staying addressed by logical id so results are
// element-exact; flows that merely route through a casualty fail over to
// disjoint-path alternatives. A round that still dies on a node crash
// surfaces a *fabric.NodeDownError; its units absorb the casualties into
// their dead sets and re-queue for recovery under the backoff policy.
func (s *Service) runRound(units []*unit) {
	type ref struct {
		u  *unit
		si int
	}

	// Relabel degraded units before building flows. A unit needs a remap
	// only when a span endpoint is dead; its compiled routes are otherwise
	// kept and the failover pass below handles dead intermediates.
	avoid := s.quarantineSnapshot()
	roundDead := make(map[uint64]bool)
	asgOf := make(map[*unit]*remap.Assignment)
	live := units[:0:0]
	for _, u := range units {
		deadU := deadView(u.dead, avoid)
		for nd := range deadU {
			roundDead[nd] = true
		}
		if len(deadU) > 0 && u.touchesDead(deadU) {
			// Degrade to dimension-order residual spans (replaying any
			// self pairs host-side), then embed them on the survivors.
			u.rebuildSpans(s.cfg.Packets)
			asg, err := remap.Plan(s.cfg.Dims, sortedNodes(deadU), spanEndpoints(u.spans))
			if err != nil {
				s.failUnit(u, err)
				continue
			}
			if asg.Degraded() {
				asgOf[u] = asg
			}
		}
		live = append(live, u)
	}
	units = live

	eb := s.cfg.Machine.ElemBytes
	if eb <= 0 {
		eb = 8
	}
	var recoveryBytes int64
	var flows []router.Flow
	var refs []ref
	roundBudget := math.Inf(1)
	for _, u := range units {
		if u.budget < roundBudget {
			roundBudget = u.budget
		}
		mv := u.p.Moves()
		asg := asgOf[u]
		for si, sp := range u.spans {
			fsrc, fdst, dims := sp.src, sp.dst, sp.dims
			if asg != nil {
				fsrc, fdst = asg.Phys(sp.src), asg.Phys(sp.dst)
				dims = asg.Route(sp.src, sp.dst)
			}
			data := mv.GatherRange(sp.src, u.src.Local[sp.src], sp.dst, sp.off, sp.ln)
			if len(u.dead) > 0 {
				recoveryBytes += int64(len(data) * eb)
			}
			flows = append(flows, router.Flow{
				Src: fsrc, Dst: fdst, Dims: dims, Packets: sp.packets, Data: data,
			})
			refs = append(refs, ref{u, si})
		}
	}
	if len(flows) == 0 {
		// Everything was local (self pairs only) — no engine needed.
		for _, u := range units {
			s.completeUnit(u)
		}
		return
	}

	// Route around links the fault view has already condemned and around
	// every node this round treats as dead (a remapped unit's own route
	// may otherwise thread a spare substitution through the corpse).
	var rep router.FailoverReport
	if s.faults != nil || len(roundDead) > 0 {
		down := func(from uint64, dim int) bool {
			if s.faults != nil && s.faults.PermanentlyDown(from, dim) {
				return true
			}
			return roundDead[from] || roundDead[from^(1<<uint(dim))]
		}
		var kept []int
		var ferr error
		flows, kept, rep, ferr = router.Failover(flows, s.cfg.Dims, down, false)
		if ferr != nil {
			for _, u := range units {
				s.failUnit(u, ferr)
			}
			return
		}
		reref := make([]ref, len(kept))
		for i, fi := range kept {
			reref[i] = refs[fi]
		}
		refs = reref
	}

	e, err := fabric.New(s.cfg.Backend, s.cfg.Dims, s.cfg.Machine)
	if err != nil {
		// The backend was validated at New; treat a late failure as fatal
		// for this round's jobs.
		for _, u := range units {
			s.failUnit(u, err)
		}
		return
	}
	if s.faults != nil {
		e.SetFaults(s.faults, fabric.RetryPolicy{})
	}
	if !math.IsInf(roundBudget, 1) {
		e.SetDeadline(roundBudget)
	}
	deliveries, part, runErr := router.RunRecover(e, flows)
	st := e.Stats()
	st.Rerouted = rep.Rerouted
	st.ExtraHops = rep.ExtraHops
	st.Abandoned = rep.Abandoned
	if s.faults != nil {
		// The machine's clock accumulates across rounds: advance the fault
		// view by this round's makespan, so fired kills become permanent
		// history and future windows shift closer.
		s.faults = s.faults.After(st.Time)
	}
	s.mu.Lock()
	s.metrics.Rounds++
	s.metrics.Fabric = s.metrics.Fabric.Merge(st)
	s.metrics.RecoveryBytes += recoveryBytes
	s.mu.Unlock()

	if runErr != nil {
		// Salvage completed flows into their units, then classify each
		// unit: fail with checkpoints, or absorb and resume.
		for k, fi := range part.FlowIdx {
			r := refs[fi]
			sp := r.u.spans[r.si]
			mv := r.u.p.Moves()
			mv.ScatterRange(sp.dst, r.u.loc[sp.dst], sp.src, sp.off, part.Data[k])
			r.u.del.Add(sp.src, sp.dst, sp.off, len(part.Data[k]))
		}
		// A node-down abort is recoverable hardware loss, not a job
		// failure: feed the circuit breaker, fold the casualties into
		// every unit's dead set, and re-queue survivors of the attempt
		// budget for a remapped recovery round under the backoff policy.
		var nde *fabric.NodeDownError
		if errors.As(runErr, &nde) {
			s.noteSuspects(nde.Nodes)
			for _, u := range units {
				u.stats = u.stats.Merge(st)
				u.attempts++
				u.dead = mergeDead(u.dead, nde.Nodes)
				if u.attempts >= s.cfg.MaxAttempts {
					s.failUnit(u, fmt.Errorf("%w (%d attempt(s)): %w", ErrAttempts, u.attempts, runErr))
					continue
				}
				u.budget -= st.Time
				if u.budget <= 0 {
					s.failUnit(u, runErr)
					continue
				}
				u.rebuildSpans(s.cfg.Packets)
				if len(u.spans) == 0 {
					s.completeUnit(u)
					continue
				}
				s.requeueAfterCrash(u)
			}
			return
		}

		deadline := errors.Is(runErr, fabric.ErrDeadline)
		for _, u := range units {
			u.stats = u.stats.Merge(st)
			u.attempts++
			if !deadline {
				s.failUnit(u, runErr)
				continue
			}
			binding := u.budget <= roundBudget
			if binding || u.attempts >= s.cfg.MaxAttempts {
				cause := runErr
				if !binding {
					cause = fmt.Errorf("%w (%d attempt(s)): %w", ErrAttempts, u.attempts, runErr)
				}
				s.failUnit(u, cause)
				continue
			}
			u.budget -= st.Time
			if u.budget <= 0 {
				s.failUnit(u, runErr)
				continue
			}
			u.rebuildSpans(s.cfg.Packets)
			if len(u.spans) == 0 {
				s.completeUnit(u)
				continue
			}
			s.mu.Lock()
			s.resume = append(s.resume, u)
			s.metrics.Resumed++
			s.cond.Signal()
			s.mu.Unlock()
		}
		return
	}

	// Zip deliveries back to (unit, span): per (dst, src) pair, deliveries
	// arrive in global flow-injection order (the router sorts each node's
	// deliveries stably by source), so a per-pair FIFO of merged flow
	// indices attributes every chunk even when several tenants share a
	// processor pair.
	fifo := make(map[pair][]int)
	for k, f := range flows {
		key := pair{f.Dst, f.Src}
		fifo[key] = append(fifo[key], k)
	}
	next := make(map[pair]int)
	for dst, ds := range deliveries {
		for _, dl := range ds {
			key := pair{dst, dl.Src}
			k := fifo[key][next[key]]
			next[key]++
			r := refs[k]
			sp := r.u.spans[r.si]
			mv := r.u.p.Moves()
			// Scatter by the span's logical ids, not the wire endpoints —
			// under a remap the flow traveled between physical hosts, but
			// the payload still belongs to the logical (src, dst) pair.
			mv.ScatterRange(sp.dst, r.u.loc[sp.dst], sp.src, sp.off, dl.Data)
			r.u.del.Add(sp.src, sp.dst, sp.off, len(dl.Data))
		}
	}
	for _, u := range units {
		u.stats = u.stats.Merge(st)
		s.completeUnit(u)
	}
}

// completeUnit publishes a finished unit to its tenants. The leader gets
// the unit's own arrays; every follower gets an independent deep copy —
// batched tenants must each own their result.
func (s *Service) completeUnit(u *unit) {
	after := u.p.After()
	for i, j := range u.jobs {
		loc := u.loc
		if i > 0 {
			loc = copyLoc(u.loc)
		}
		res := &core.Result{
			Dist:  &matrix.Dist{Layout: after, Local: loc[:after.N()]},
			Stats: u.stats,
		}
		j.finish(res, nil)
		s.mu.Lock()
		s.metrics.Completed++
		if i > 0 {
			s.metrics.Batched++
		}
		s.metrics.latencies = append(s.metrics.latencies, j.lat)
		s.mu.Unlock()
	}
}

// failUnit fails every tenant of a unit with its own resumable checkpoint:
// the leader owns the unit's arrays and delivery record, followers get deep
// copies — each tenant can hand its *core.ExecError checkpoint to
// core.Resume independently and finish element-exact on a private engine.
func (s *Service) failUnit(u *unit, cause error) {
	for i, j := range u.jobs {
		loc, del := u.loc, u.del
		if i > 0 {
			loc, del = copyLoc(u.loc), u.del.Clone()
		}
		cp := &core.Checkpoint{
			Plan: u.p, Src: u.src, Loc: loc, Delivered: del,
			Stats: u.stats, At: u.stats.Time,
			Opts: core.ExecOptions{Backend: s.cfg.Backend},
			Dead: u.dead,
		}
		j.finish(nil, &core.ExecError{Checkpoint: cp, Err: cause})
		s.mu.Lock()
		s.metrics.Failed++
		s.metrics.latencies = append(s.metrics.latencies, j.lat)
		s.mu.Unlock()
	}
}

// copyLoc deep-copies a set of local arrays.
func copyLoc(loc [][]float64) [][]float64 {
	out := make([][]float64, len(loc))
	for i, a := range loc {
		if a != nil {
			out[i] = append([]float64(nil), a...)
		}
	}
	return out
}
