package boolcube

import (
	"errors"
	"reflect"
	"testing"

	"boolcube/internal/router"
	"boolcube/internal/simnet"
)

// FuzzCheckpointResume drives the recovery invariant over random fault
// scenarios: whatever the algorithm, seed, kill count and mid-run epoch, a
// failed execution must either be refused/fail typed, or checkpoint and
// resume into exactly the distribution an unfaulted run produces.
func FuzzCheckpointResume(f *testing.F) {
	f.Add(int64(1), uint8(0), 0.4, uint8(2))
	f.Add(int64(2), uint8(1), 0.35, uint8(1))
	f.Add(int64(3), uint8(2), 0.7, uint8(3))
	f.Add(int64(4), uint8(3), 0.5, uint8(2))
	f.Add(int64(11), uint8(2), 0.15, uint8(4))

	const pq, n = 4, 6
	algos := []Algorithm{SPT, DPT, MPT, Exchange}
	m := NewIotaMatrix(pq, pq)
	want := m.Transposed()
	before := TwoDimConsecutive(pq, pq, n/2, n/2, Binary)
	after := TwoDimConsecutive(pq, pq, n/2, n/2, Binary)

	f.Fuzz(func(t *testing.T, seed int64, algIdx uint8, frac float64, k uint8) {
		alg := algos[int(algIdx)%len(algos)]
		if !(frac >= 0.05 && frac <= 0.95) { // also rejects NaN
			frac = 0.5
		}
		kills := 1 + int(k%4)
		ct, err := Compile(before, after, Options{Algorithm: alg, Machine: IPSCNPort()})
		if err != nil {
			t.Fatal(err)
		}
		base, err := ct.Execute(Scatter(m, before))
		if err != nil {
			t.Fatal(err)
		}
		fp, err := CompileFaults(FaultSpec{Seed: seed, Rules: []FaultRule{
			{Kind: FaultRandomLinks, Count: kills, Start: frac * base.Stats.Time},
		}}, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ct.ExecuteWith(Scatter(m, before), ExecOptions{Faults: fp})
		for attempt := 0; err != nil && attempt < 4; attempt++ {
			var xe *ExecError
			if !errors.As(err, &xe) {
				// Pre-run refusals (no checkpoint): a rerouted residual that
				// exhausts its disjoint paths, or an infeasible schedule.
				if errors.Is(err, router.ErrNoRoute) || errors.Is(err, ErrInfeasible) {
					t.Skipf("unroutable scenario: %v", err)
				}
				t.Fatalf("non-resumable failure without checkpoint: %v", err)
			}
			if got := xe.Checkpoint.DeliveredElems(); got > len(m.Data) {
				t.Fatalf("checkpoint claims %d delivered of %d total", got, len(m.Data))
			}
			res, err = Resume(xe.Checkpoint, ExecOptions{})
		}
		if err != nil {
			if errors.Is(err, router.ErrNoRoute) || errors.Is(err, simnet.ErrLinkDown) {
				t.Skipf("scenario unrecoverable in 4 attempts: %v", err)
			}
			t.Fatalf("resume did not converge: %v", err)
		}
		if verr := res.Dist.Verify(want); verr != nil {
			t.Fatalf("alg=%v seed=%d k=%d frac=%v: recovered transpose wrong: %v",
				alg, seed, kills, frac, verr)
		}
		if !reflect.DeepEqual(res.Dist.Local, base.Dist.Local) {
			t.Fatalf("alg=%v seed=%d k=%d frac=%v: recovered distribution not bit-identical",
				alg, seed, kills, frac)
		}
	})
}
