package cube

import (
	"fmt"

	"boolcube/internal/bits"
)

// This file implements the parallel-paths property of the Boolean cube the
// paper quotes from Saad & Schultz [18]: between any pair of nodes (x, y)
// with Hamming distance H there exist n node-disjoint paths — H of length
// H and n-H of length H+2 — used for transposition algorithms that split
// data over multiple routes.

// DisjointPaths returns n paths from x to y as dimension sequences:
// paths[i] for each differing dimension i starts by crossing i and visits
// the differing dimensions in cyclic order (length H); paths for each
// agreeing dimension j cross j first, then all differing dimensions, then j
// again (length H+2). The paths are internally node-disjoint and pairwise
// distinct. x must differ from y.
func DisjointPaths(c Cube, x, y uint64) [][]int {
	n := c.Dims()
	diff := x ^ y
	if diff == 0 {
		panic(fmt.Sprintf("cube: no paths needed from %d to itself", x))
	}
	var diffDims, sameDims []int
	for d := 0; d < n; d++ {
		if bits.Bit(diff, d) == 1 {
			diffDims = append(diffDims, d)
		} else {
			sameDims = append(sameDims, d)
		}
	}
	H := len(diffDims)
	paths := make([][]int, 0, n)
	// H shortest paths: rotate the differing-dimension order.
	for r := 0; r < H; r++ {
		p := make([]int, 0, H)
		for i := 0; i < H; i++ {
			p = append(p, diffDims[(r+i)%H])
		}
		paths = append(paths, p)
	}
	// n-H detour paths: leave through an agreeing dimension, traverse the
	// differing dimensions, and return.
	for _, d := range sameDims {
		p := make([]int, 0, H+2)
		p = append(p, d)
		p = append(p, diffDims...)
		p = append(p, d)
		paths = append(paths, p)
	}
	return paths
}
