package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load type-checks one import-free source snippet.
func load(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Error: func(error) {}}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type check: %v", err)
	}
	return fset, f, info
}

// fn returns the named function declaration.
func fn(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

// objNamed finds the object of the identifier with the given name defined
// inside node.
func objNamed(t *testing.T, info *types.Info, node ast.Node, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && obj == nil {
			if o := info.Defs[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("no object %s", name)
	}
	return obj
}

const aliasSrc = `package x
type M struct{ Data []float64 }
func clone(s []float64) []float64 { return append([]float64(nil), s...) }
func f() []float64 {
	m := M{}
	d := m.Data
	e := d[2:]
	c := clone(m.Data)
	_ = e
	return c
}`

func TestAliasSetModes(t *testing.T) {
	_, f, info := load(t, aliasSrc)
	decl := fn(t, f, "f")
	scope := NodeSpan(decl)
	m := objNamed(t, info, decl, "m")

	al := NewSet(info, scope, Aliases)
	al.Seed(m)
	al.Solve(decl.Body)
	for name, want := range map[string]bool{"d": true, "e": true, "c": false} {
		o := objNamed(t, info, decl, name)
		if al.Has(o) != want {
			t.Errorf("Aliases: Has(%s) = %v, want %v", name, al.Has(o), want)
		}
		if want && al.Root(o) != m {
			t.Errorf("Aliases: Root(%s) != m", name)
		}
	}

	de := NewSet(info, scope, Derived)
	de.Seed(m)
	de.Solve(decl.Body)
	// Derived mode crosses the call boundary: c derives from m.
	if c := objNamed(t, info, decl, "c"); !de.Has(c) {
		t.Error("Derived: c should derive from m through clone(m.Data)")
	}
}

const captureSrc = `package x
func g() {
	shared := 0
	out := make([]int, 4)
	read := 7
	f := func(i int) {
		shared += read
		out[i] = i
		local := i
		_ = local
	}
	f(0)
}`

func TestCaptures(t *testing.T) {
	_, f, info := load(t, captureSrc)
	decl := fn(t, f, "g")
	var lit *ast.FuncLit
	ast.Inspect(decl, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	caps := Captures(info, lit)
	got := map[string]Capture{}
	for _, c := range caps {
		got[c.Obj.Name()] = c
	}
	if c, ok := got["shared"]; !ok || len(c.Writes) != 1 {
		t.Errorf("shared: want 1 write, got %+v", c)
	}
	if c, ok := got["out"]; !ok || len(c.Writes) != 1 {
		t.Errorf("out: want 1 write, got %+v", c)
	}
	if c, ok := got["read"]; !ok || len(c.Reads) != 1 || len(c.Writes) != 0 {
		t.Errorf("read: want read-only capture, got %+v", c)
	}
	if _, ok := got["local"]; ok {
		t.Error("local must not be reported as captured")
	}
	if _, ok := got["i"]; ok {
		t.Error("parameter i must not be reported as captured")
	}
}

const escapeSrc = `package x
type M struct{ Data []float64 }
func h() {
	var keep []float64
	m := M{}
	d := m.Data
	keep = d
	_ = keep
}`

func TestEscapes(t *testing.T) {
	_, f, info := load(t, escapeSrc)
	decl := fn(t, f, "h")
	// Scope the set to the statements after keep's declaration, so keep is
	// outside-scope and the store into it is an escape.
	stmts := decl.Body.List[1:]
	scope := Span{stmts[0].Pos(), decl.Body.End()}
	set := NewSet(info, scope, Aliases)
	set.Seed(objNamed(t, info, decl, "m"))
	set.Solve(decl.Body)
	esc := Escapes(info, set, decl.Body)
	if len(esc) != 1 {
		t.Fatalf("want 1 escape, got %d", len(esc))
	}
	if esc[0].Dest.Name() != "keep" || esc[0].Root.Name() != "m" {
		t.Errorf("escape = root %s into %s, want m into keep", esc[0].Root.Name(), esc[0].Dest.Name())
	}
}

const defuseSrc = `package x
type M struct{ Data []float64 }
func recv() M { return M{} }
func k() {
	m := recv()
	_ = m.Data
	m = recv()
	_ = m.Data
}`

func TestDefUse(t *testing.T) {
	_, f, info := load(t, defuseSrc)
	decl := fn(t, f, "k")
	du := CollectDefUse(info, NodeSpan(decl), decl.Body)
	m := objNamed(t, info, decl, "m")
	refs := du.Refs(m)
	if len(refs) != 4 {
		t.Fatalf("want 4 refs to m, got %d", len(refs))
	}
	wantDefs := []bool{true, false, true, false}
	for i, r := range refs {
		if r.IsDef != wantDefs[i] {
			t.Errorf("ref %d: IsDef = %v, want %v", i, r.IsDef, wantDefs[i])
		}
	}
	// Uses strictly after the first def: the two selector uses.
	if uses := du.UsesAfter(m, refs[0].Ident.Pos()); len(uses) != 2 {
		t.Errorf("UsesAfter(first def) = %d uses, want 2", len(uses))
	}
	// A def (the rebind) sits between the first use and the last use.
	if !du.DefBetween(m, refs[1].Ident.Pos(), refs[3].Ident.Pos(), nil) {
		t.Error("DefBetween missed the rebind")
	}
}

const summarySrc = `package x
func leaf() int { return 1 }
func mid() int  { return leaf() }
func top() int  { return mid() }
func other() int { return 0 }`

func TestSummaryReaches(t *testing.T) {
	_, f, info := load(t, summarySrc)
	ix := NewIndex()
	var fns = map[string]*types.Func{}
	for _, name := range []string{"leaf", "mid", "top", "other"} {
		d := fn(t, f, name)
		obj := info.Defs[d.Name].(*types.Func)
		fns[name] = obj
		ix.AddFunc(obj, info, d.Body)
	}
	ix.AddFact(fns["leaf"], Fact{Prop: "det", Detail: "time.Now"})

	tr := ix.Reaches(fns["top"], "det")
	if tr == nil {
		t.Fatal("top should reach det through mid -> leaf")
	}
	if len(tr.Calls) != 2 || tr.Calls[0].Callee != fns["mid"] || tr.Calls[1].Callee != fns["leaf"] {
		t.Errorf("trace chain wrong: %+v", tr.Calls)
	}
	if tr.Fact.Detail != "time.Now" {
		t.Errorf("fact detail = %q", tr.Fact.Detail)
	}
	if ix.Reaches(fns["other"], "det") != nil {
		t.Error("other must not reach det")
	}
	if direct := ix.Reaches(fns["leaf"], "det"); direct == nil || len(direct.Calls) != 0 {
		t.Error("leaf reaches det directly with an empty chain")
	}
}
