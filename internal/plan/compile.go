package plan

import (
	"fmt"

	"boolcube/internal/bits"
	"boolcube/internal/comm"
	"boolcube/internal/cube"
	"boolcube/internal/field"
	"boolcube/internal/router"
)

// Compile builds the immutable plan for transposing a matrix distributed
// under `before` into the `after` layout (which describes the transposed
// matrix) with the given algorithm. Auto is resolved to a concrete
// algorithm first. The returned plan is sealed: it is never mutated and is
// safe to replay concurrently and to share through a Cache.
func Compile(alg Algorithm, before, after field.Layout, cfg Config) (*Plan, error) {
	if alg == Auto {
		var err error
		if alg, err = Choose(before, after, cfg); err != nil {
			return nil, err
		}
	}
	if alg < 0 || int(alg) >= len(specs) || specs[alg].compile == nil {
		return nil, fmt.Errorf("plan: unknown algorithm %v", alg)
	}
	n := before.NBits()
	if a := after.NBits(); a > n {
		n = a
	}
	p := &Plan{alg: alg, before: before, after: after, cfg: cfg, n: n}
	if err := specs[alg].compile(p); err != nil {
		return nil, err
	}
	return p, nil
}

func compileExchange(p *Plan) error {
	mv, err := NewMoves(p.before, p.after, true)
	if err != nil {
		return err
	}
	p.kind, p.moves = KindExchange, mv
	p.dims = comm.DescendingDims(p.n)
	return nil
}

func compileExchangeSPTOrder(p *Plan) error {
	n := p.before.NBits()
	if n%2 != 0 {
		return fmt.Errorf("plan: SPT order needs an even number of cube dimensions, got %d", n)
	}
	mv, err := NewMoves(p.before, p.after, true)
	if err != nil {
		return err
	}
	p.kind, p.moves = KindExchange, mv
	p.dims = comm.PairedDims(n)
	return nil
}

// pairwiseOnly verifies that the transposition is between distinct
// source/destination pairs (Section 6.1) so path-system transposes apply.
func pairwiseOnly(before, after field.Layout, name string) error {
	c := field.Classify(before, after)
	if c.Pattern != field.Pairwise {
		return fmt.Errorf("plan: %s requires pairwise communication, got %v", name, c.Pattern)
	}
	return nil
}

// compileFlows expresses the transpose as source-routed flows: for every
// (source, destination) payload, the route function's paths split the
// payload evenly (by canonical-order ranges), and each chunk is packetized
// — by the caller's Packets, or at the machine's natural B_m grain so
// store-and-forward hops pipeline.
func compileFlows(p *Plan, route func(src, dst uint64, n int) [][]int) error {
	mv, err := NewMoves(p.before, p.after, true)
	if err != nil {
		return err
	}
	p.kind, p.moves = KindFlow, mv
	for sp := 0; sp < p.before.N(); sp++ {
		src := uint64(sp)
		for _, dp := range mv.Destinations(src) {
			total := mv.PayloadLen(src, dp)
			paths := route(src, dp, p.n)
			if len(paths) == 0 {
				return fmt.Errorf("plan: no route from %d to %d", src, dp)
			}
			for pi, dims := range paths {
				off, sz := shareRange(total, len(paths), pi)
				pk := p.cfg.Packets
				if pk < 1 {
					pk = 1
					if bm := p.cfg.Machine.Bm; bm > 0 {
						cb := sz * p.cfg.Machine.ElemBytes
						pk = (cb + bm - 1) / bm
						if pk < 1 {
							pk = 1
						}
					}
				}
				p.flows = append(p.flows, Flow{
					Src: src, Dst: dp, Dims: dims, Off: off, Len: sz, Packets: pk,
				})
			}
		}
	}
	return nil
}

// shareRange splits a payload of n elements into k nearly-equal chunks and
// returns the (offset, size) of chunk i.
func shareRange(n, k, i int) (off, sz int) {
	base := n / k
	rem := n % k
	for j := 0; j < i; j++ {
		s := base
		if j < rem {
			s++
		}
		off += s
	}
	sz = base
	if i < rem {
		sz++
	}
	return off, sz
}

func compileSPT(p *Plan) error {
	if err := pairwiseOnly(p.before, p.after, "SPT"); err != nil {
		return err
	}
	return compileFlows(p, func(src, dst uint64, n int) [][]int {
		return [][]int{cube.SPTPath(src, n)}
	})
}

func compileDPT(p *Plan) error {
	if err := pairwiseOnly(p.before, p.after, "DPT"); err != nil {
		return err
	}
	return compileFlows(p, func(src, dst uint64, n int) [][]int {
		return cube.DPTPaths(src, n)
	})
}

func compileMPT(p *Plan) error {
	if err := pairwiseOnly(p.before, p.after, "MPT"); err != nil {
		return err
	}
	return compileFlows(p, func(src, dst uint64, n int) [][]int {
		return cube.MPTPaths(src, n)
	})
}

func compileParallelPaths(p *Plan) error {
	if err := pairwiseOnly(p.before, p.after, "parallel-paths"); err != nil {
		return err
	}
	c := cube.New(p.before.NBits())
	return compileFlows(p, func(src, dst uint64, n int) [][]int {
		return cube.DisjointPaths(c, src, dst)
	})
}

func compileSBnT(p *Plan) error {
	return compileFlows(p, func(src, dst uint64, n int) [][]int {
		return [][]int{cube.SBnTPath(src^dst, n)}
	})
}

func compileRoutingLogic(p *Plan) error {
	return compileFlows(p, func(src, dst uint64, n int) [][]int {
		return [][]int{router.Ecube(src, dst, n)}
	})
}

// nodePermutationOnly checks that the transposition is a node permutation
// (each source sends all of its data to exactly one destination), which is
// what the Section 6.3 algorithms route.
func nodePermutationOnly(mv *Moves) error {
	for sp := 0; sp < mv.before.N(); sp++ {
		if n := len(mv.Destinations(uint64(sp))); n > 1 {
			return fmt.Errorf("plan: mixed transpose needs a node permutation; node %d sends to %d nodes", sp, n)
		}
	}
	return nil
}

// naiveMixedRoute builds the 2n-2 step route: first convert the row field
// of the node address to the target's column-half encoding (a conversion
// within each column subcube), then convert the column field (within each
// row subcube), then run the standard n-step transpose (paired row/column
// dimensions, highest first).
func naiveMixedRoute(src, dst uint64, n int) [][]int {
	h := n / 2
	srcRow, srcCol := bits.Split(src, h, h)
	dstRow, dstCol := bits.Split(dst, h, h)
	// After conversions the node holds address (a || b) with a = dstCol
	// (the value the transpose will move into the column half) and
	// b = dstRow.
	var dims []int
	rowConv := srcRow ^ dstCol
	for i := h - 1; i >= 0; i-- {
		if rowConv>>uint(i)&1 == 1 {
			dims = append(dims, h+i)
		}
	}
	colConv := srcCol ^ dstRow
	for i := h - 1; i >= 0; i-- {
		if colConv>>uint(i)&1 == 1 {
			dims = append(dims, i)
		}
	}
	// Transpose (a || b) -> (b || a): a = dstCol, b = dstRow.
	swap := dstCol ^ dstRow
	for i := h - 1; i >= 0; i-- {
		if swap>>uint(i)&1 == 1 {
			dims = append(dims, h+i, i)
		}
	}
	return [][]int{dims}
}

// combinedMixedRoute folds conversion and transpose into n routing steps:
// iteration i (descending) routes row dimension h+i and column dimension i
// whenever source and destination addresses differ there (Section 6.3).
func combinedMixedRoute(src, dst uint64, n int) [][]int {
	h := n / 2
	rel := src ^ dst
	var dims []int
	for i := h - 1; i >= 0; i-- {
		if rel>>uint(h+i)&1 == 1 {
			dims = append(dims, h+i)
		}
		if rel>>uint(i)&1 == 1 {
			dims = append(dims, i)
		}
	}
	return [][]int{dims}
}

func compileMixed(p *Plan, route func(src, dst uint64, n int) [][]int) error {
	if n := p.before.NBits(); n%2 != 0 {
		return fmt.Errorf("plan: mixed transpose needs an even number of cube dimensions")
	}
	mv, err := NewMoves(p.before, p.after, true)
	if err != nil {
		return err
	}
	if err := nodePermutationOnly(mv); err != nil {
		return err
	}
	return compileFlows(p, route)
}

func compileMixedNaive(p *Plan) error    { return compileMixed(p, naiveMixedRoute) }
func compileMixedCombined(p *Plan) error { return compileMixed(p, combinedMixedRoute) }

// pseudocodeControls returns the row and column control modes for the
// encoding combination (before -> after), or an error for unsupported
// pairs. The modes follow from the invariant that after the iterations
// above j, each direction's processed dimensions hold the TARGET encoding
// bits of the block currently at the node:
//
//   - crossRow(j) = rowBit_j XOR colBit_j XOR T_row, where T_row
//     reconstructs the next-higher bit of the source encoding in the row
//     direction: the node's previous row bit when the target row bits are
//     plain (block mode), or the parity of the processed row bits when the
//     target row bits are a Gray code (parity mode). Symmetrically for
//     crossCol(j) with the column direction.
//
// Base case (binary rows / Gray columns, unchanged): target row bits are
// the plain v (block), target column bits are G(u) (parity) — the paper's
// even-block-rows and even-parity-block-columns. Pure binary to transposed
// pure Gray: targets are G(v) and G(u), both parity. Pure Gray to
// transposed pure binary: targets are v and u, both block.
func pseudocodeControls(before, after field.Layout) (row, col Ctrl, err error) {
	if len(before.Fields) != 2 || len(after.Fields) != 2 {
		return 0, 0, fmt.Errorf("plan: pseudocode transpose needs two-field layouts")
	}
	br, bc := before.Fields[0].Enc, before.Fields[1].Enc
	ar, ac := after.Fields[0].Enc, after.Fields[1].Enc
	switch {
	case br == field.Binary && bc == field.Gray && ar == field.Binary && ac == field.Gray:
		return CtrlBlock, CtrlParity, nil
	case br == field.Binary && bc == field.Binary && ar == field.Gray && ac == field.Gray:
		return CtrlParity, CtrlParity, nil
	case br == field.Gray && bc == field.Gray && ar == field.Binary && ac == field.Binary:
		return CtrlBlock, CtrlBlock, nil
	}
	return 0, 0, fmt.Errorf("plan: pseudocode transpose does not support %v/%v -> %v/%v", br, bc, ar, ac)
}

func compileMixedPseudocode(p *Plan) error {
	n := p.before.NBits()
	if n%2 != 0 {
		return fmt.Errorf("plan: pseudocode transpose needs even n")
	}
	row, col, err := pseudocodeControls(p.before, p.after)
	if err != nil {
		return err
	}
	mv, err := NewMoves(p.before, p.after, true)
	if err != nil {
		return err
	}
	for sp := 0; sp < p.before.N(); sp++ {
		if len(mv.Destinations(uint64(sp))) > 1 {
			return fmt.Errorf("plan: layout pair is not a node permutation")
		}
	}
	p.kind, p.moves = KindMixedProgram, mv
	p.rowCtrl, p.colCtrl = row, col
	// The published program runs on exactly the before-layout's cube.
	p.n = n
	return nil
}
