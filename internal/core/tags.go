package core

import (
	"boolcube/internal/fabric"
)

// Per-element address tags, the SIMNET_DEBUG half of delivery auditing: each
// element of a (src, dst) canonical payload is stamped src<<32 | canonical
// index at gather time, travels with the data through every forwarding hop
// and repacking, and is checked against its landing position at delivery.
// The always-on checksum catches corrupted payloads; tags additionally catch
// correctly-checksummed payloads scattered to the wrong place.

// addrTags builds the tag array of the canonical payload range
// [off, off+n) originating at src.
func addrTags(src uint64, off, n int) []uint64 {
	tags := make([]uint64, n)
	for i := range tags {
		tags[i] = src<<32 | uint64(off+i)
	}
	return tags
}

// verifyTags checks a delivered tag array inside a node program, aborting
// the run with a typed *fabric.AuditError on the first mismatch.
func verifyTags(nd fabric.Node, src, dst uint64, off int, tags []uint64) {
	for i, tag := range tags {
		if want := src<<32 | uint64(off+i); tag != want {
			nd.Fail(&fabric.AuditError{Node: nd.ID(), Src: src, Dst: dst, What: "tag", Want: want, Got: tag})
		}
	}
}

// verifyTagsHost is verifyTags for host-side reassembly (flow deliveries are
// scattered outside node programs). Tag checking only runs under
// SIMNET_DEBUG, so a mismatch is a simulator bug and panics loudly.
func verifyTagsHost(src, dst uint64, off int, tags []uint64) {
	for i, tag := range tags {
		if want := src<<32 | uint64(off+i); tag != want {
			panic((&fabric.AuditError{Src: src, Dst: dst, What: "tag", Want: want, Got: tag}).Error())
		}
	}
}
