package exper

import (
	"fmt"

	"boolcube/internal/comm"

	"boolcube/internal/core"
	"boolcube/internal/cost"
	"boolcube/internal/machine"
	"boolcube/internal/plan"
)

func init() {
	register("fig16", fig16)
	register("fig17", fig17)
	register("fig18", fig18)
	register("fig19", fig19)
	register("sec9", sec9)
}

// cmTranspose runs the routing-logic transpose of a square matrix with
// multiple elements per processor on the Connection Machine model.
func cmTranspose(logElems, n int) (float64, error) {
	st, err := runTranspose(plan.RoutingLogic, logElems, n,
		core.Options{Machine: machine.ConnectionMachine()})
	if err != nil {
		return 0, err
	}
	return st.Time, nil
}

// fig16 reproduces Figure 16: transpose on the Connection Machine with one
// 32-bit element per processor, via the routing logic, vs machine size.
func fig16() (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Connection Machine transpose, one element per processor (routing logic)",
		Columns: []string{"cube dims n", "processors", "sim time (µs)"},
		Notes: []string{
			"bit-serial pipelined router model; machine sizes scaled down from the CM's 2^16",
		},
	}
	for _, n := range []int{4, 6, 8, 10, 12} {
		tm, err := cmTranspose(n, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, 1<<uint(n), tm)
	}
	return t, nil
}

// fig17 reproduces Figure 17: Connection Machine transpose with multiple
// elements per processor.
func fig17() (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "Connection Machine transpose, multiple elements per processor",
		Columns: []string{"elements/processor", "n=6 (µs)", "n=8 (µs)", "n=10 (µs)"},
	}
	for _, logPer := range []int{0, 1, 2, 3, 4, 5, 6} {
		row := []interface{}{1 << uint(logPer)}
		for _, n := range []int{6, 8, 10} {
			tm, err := cmTranspose(n+logPer, n)
			if err != nil {
				return nil, err
			}
			row = append(row, tm)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// fig18 reproduces Figure 18: transpose time of two fixed-size matrices as
// a function of the machine size.
func fig18() (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "Connection Machine transpose of fixed matrices vs machine size",
		Columns: []string{"cube dims n", "processors", "64x64 matrix (µs)", "128x128 matrix (µs)"},
	}
	for _, n := range []int{4, 6, 8, 10, 12} {
		row := []interface{}{n, 1 << uint(n)}
		for _, logElems := range []int{12, 14} { // 64x64 = 2^12, 128x128 = 2^14
			if _, _, _, _, ok := twoDimLayouts(logElems, n); !ok || n > logElems {
				row = append(row, "-")
				continue
			}
			tm, err := cmTranspose(logElems, n)
			if err != nil {
				return nil, err
			}
			row = append(row, tm)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// fig19 reproduces Figure 19: one-dimensional vs two-dimensional
// partitioning for the transpose on the iPSC.
func fig19() (*Table, error) {
	t := &Table{
		ID:      "fig19",
		Title:   "1-D vs 2-D partitioned transpose on the iPSC",
		Columns: []string{"cube dims n", "matrix KB", "1-D buffered (ms)", "2-D SPT (ms)", "2-D/1-D"},
		Notes: []string{
			"one-port: 1-D moves half the data of 2-D per the paper's Section 9 comparison",
			"2-D includes the pack/unpack copy term; copy favors 2-D on large cubes",
		},
	}
	mach := machine.IPSC()
	for _, n := range []int{2, 4, 6} {
		for _, logBytes := range []int{12, 14, 16, 18, 20} {
			logElems := logBytes - 2
			p, q := shapeFor(logElems)
			if n > p || n > q || n%2 != 0 {
				continue
			}
			oneD, err := oneDimTranspose(p, q, n, comm.Buffered, mach)
			if err != nil {
				return nil, err
			}
			st, err := runTranspose(plan.SPT, logElems, n,
				core.Options{Machine: mach, LocalCopies: true})
			if err != nil {
				return nil, err
			}
			t.AddRow(n, 1<<uint(logBytes-10), oneD/1000, st.Time/1000,
				fmt.Sprintf("%.2f", st.Time/oneD))
		}
	}
	return t, nil
}

// sec9 reproduces the Section 9 comparison for n-port communication: the
// one-dimensional SBnT transpose vs the two-dimensional MPT, including the
// predicted break-even region N ≈ c·r/log²r.
func sec9() (*Table, error) {
	t := &Table{
		ID:      "sec9",
		Title:   "n-port 1-D (SBnT) vs 2-D (MPT): models, simulation, break-even",
		Columns: []string{"cube dims n", "matrix KB", "1-D model (ms)", "2-D model (ms)", "1-D sim (ms)", "2-D sim (ms)", "winner(model)"},
		Notes: []string{
			"Section 9: 1-D wins for n >= sqrt(M t_c/(N τ)) or n <= sqrt(M t_c/(2N τ)); 2-D can win between",
		},
	}
	mach := machine.IPSCNPort()
	for _, n := range []int{4, 6, 8} {
		for _, logBytes := range []int{12, 16, 20} {
			logElems := logBytes - 2
			if _, _, _, _, ok := twoDimLayouts(logElems, n); !ok {
				continue
			}
			M := float64(int64(1) << uint(logBytes))
			m1 := cost.OneDimNPortMin(M, n, mach)
			m2, _ := cost.MPT(M, n, mach)
			s1, err := runTranspose(plan.SBnT, logElems, n,
				core.Options{Machine: mach, Packets: 1})
			if err != nil {
				return nil, err
			}
			s2, err := runTranspose(plan.MPT, logElems, n,
				core.Options{Machine: mach, Packets: 2})
			if err != nil {
				return nil, err
			}
			winner := "1-D"
			if m2 < m1 {
				winner = "2-D"
			}
			t.AddRow(n, 1<<uint(logBytes-10), m1/1000, m2/1000,
				s1.Time/1000, s2.Time/1000, winner)
		}
	}
	// The 2-D-wins window sqrt(M t_c/(2Nτ)) < n < sqrt(M t_c/(Nτ)) needs
	// matrices too large to simulate quickly; show it from the models.
	for _, logBytes := range []int{23, 24, 25} {
		n := 6
		M := float64(int64(1) << uint(logBytes))
		m1 := cost.OneDimNPortMin(M, n, mach)
		m2, _ := cost.MPT(M, n, mach)
		winner := "1-D"
		if m2 < m1 {
			winner = "2-D"
		}
		t.AddRow(n, 1<<uint(logBytes-10), m1/1000, m2/1000, "-", "-", winner)
	}
	return t, nil
}
