package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boolcube/internal/analysis"
)

// fixtureDir returns the path of one analyzer fixture package, relative to
// this test's working directory (cmd/cubevet).
func fixtureDir(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "src", name)
}

// runCubevet invokes the CLI entry point, capturing output.
func runCubevet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// wantFindings reads a fixture's golden file and prefixes each finding
// with the path the CLI is expected to print.
func wantFindings(t *testing.T, name string) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(fixtureDir(name), "expect.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			continue
		}
		want = append(want, filepath.Join(fixtureDir(name))+string(filepath.Separator)+line)
	}
	return want
}

// TestFixtureFindings runs the analyzer binary logic against each fixture
// package with only its pass enabled and asserts the exact finding list
// (including suppression-comment behavior, which the goldens encode).
func TestFixtureFindings(t *testing.T) {
	for _, pass := range analysis.PassNames() {
		t.Run(pass, func(t *testing.T) {
			code, stdout, stderr := runCubevet(t, "-passes", pass, fixtureDir(pass))
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
			}
			got := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
			want := wantFindings(t, pass)
			if len(got) != len(want) {
				t.Fatalf("got %d findings, want %d:\n--- got ---\n%s--- want ---\n%s",
					len(got), len(want), stdout, strings.Join(want, "\n")+"\n")
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("finding %d:\n got %s\nwant %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCleanPackage asserts exit 0 and silence on a violation-free package
// under every pass.
func TestCleanPackage(t *testing.T) {
	code, stdout, stderr := runCubevet(t, fixtureDir("clean"))
	if code != 0 || stdout != "" {
		t.Fatalf("clean package: exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}
}

// TestSuppressionIsHonored re-runs a fixture and asserts the suppressed
// line never appears even though its sibling findings do.
func TestSuppressionIsHonored(t *testing.T) {
	code, stdout, _ := runCubevet(t, "-passes", "shiftwidth", fixtureDir("shiftwidth"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if strings.Contains(stdout, "Suppressed") || strings.Contains(stdout, ":76:") {
		t.Errorf("suppressed finding leaked into output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "in Mask;") {
		t.Errorf("expected unsuppressed Mask finding, got:\n%s", stdout)
	}
}

// TestListPasses covers -list.
func TestListPasses(t *testing.T) {
	code, stdout, _ := runCubevet(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, name := range analysis.PassNames() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing pass %s:\n%s", name, stdout)
		}
	}
}

// TestUnknownPass covers usage errors.
func TestUnknownPass(t *testing.T) {
	code, _, stderr := runCubevet(t, "-passes", "bogus", fixtureDir("clean"))
	if code != 2 {
		t.Fatalf("unknown pass: exit %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "unknown pass") {
		t.Errorf("stderr missing diagnostic: %q", stderr)
	}
}

// TestJSONOutput covers -json: the same findings as the text run, as a
// well-formed JSON array with file/line/pass/severity populated.
func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runCubevet(t, "-passes", "shiftwidth", "-json", fixtureDir("shiftwidth"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	var got []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Pass     string `json:"pass"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	want := wantFindings(t, "shiftwidth")
	if len(got) != len(want) {
		t.Fatalf("got %d JSON findings, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f.Pass != "shiftwidth" || f.Severity != "error" {
			t.Errorf("finding %d: pass %q severity %q, want shiftwidth/error", i, f.Pass, f.Severity)
		}
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding %d has empty position or message: %+v", i, f)
		}
	}
}

// TestWarnDemotion covers -warn: demoted passes still report (with a
// "warning:" prefix) but no longer gate the exit status.
func TestWarnDemotion(t *testing.T) {
	code, stdout, stderr := runCubevet(t, "-passes", "shiftwidth", "-warn", "shiftwidth", fixtureDir("shiftwidth"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 with all findings demoted (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "warning:") {
		t.Errorf("demoted findings missing warning prefix:\n%s", stdout)
	}
	if lines := strings.Count(stdout, "warning:"); lines != len(wantFindings(t, "shiftwidth")) {
		t.Errorf("got %d warnings, want %d", lines, len(wantFindings(t, "shiftwidth")))
	}
	if !strings.Contains(stderr, "0 gating") {
		t.Errorf("summary should report 0 gating findings, got: %q", stderr)
	}
}

// TestTypeErrorExit covers the load-failure contract: a package that does
// not type-check makes the driver refuse to analyze, exit 2, distinct from
// the findings exit 1.
func TestTypeErrorExit(t *testing.T) {
	code, stdout, stderr := runCubevet(t, fixtureDir("broken"))
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stdout: %s, stderr: %s)", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "refusing to analyze") {
		t.Errorf("stderr missing refusal diagnostic: %q", stderr)
	}
	if stdout != "" {
		t.Errorf("no findings should print on type failure, got:\n%s", stdout)
	}
}

// TestSelfCheck runs every pass over the real module tree and asserts the
// tree is clean: every invariant cubevet enforces holds in the code that
// ships, and every intentional exception carries a reasoned
// //cubevet:ignore. This is the repository's own gate, locked as a test.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis; skipped in -short")
	}
	code, stdout, stderr := runCubevet(t, "./...")
	if code != 0 {
		t.Fatalf("cubevet ./... over the real tree: exit %d, want 0\n%s%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("unexpected findings:\n%s", stdout)
	}
}
