package core

import (
	"fmt"

	"boolcube/internal/bits"
	"boolcube/internal/field"
	"boolcube/internal/matrix"
)

// This file implements Section 6.3: transposing matrices whose rows and
// columns use different encodings (binary vs binary-reflected Gray code),
// either naively — code conversion in each column subcube, code conversion
// in each row subcube, then the n-step transpose, for 2n-2 routing steps —
// or with the combined algorithm that folds the conversions into the
// transpose and needs only n routing steps.

// mixedPermutation checks that the transposition from d.Layout to after is
// a node permutation (each source sends all of its data to exactly one
// destination), which is what the Section 6.3 algorithms route.
func mixedPermutation(pl *plan) error {
	for sp := 0; sp < pl.before.N(); sp++ {
		if n := len(pl.destinations(uint64(sp))); n > 1 {
			return fmt.Errorf("core: mixed transpose needs a node permutation; node %d sends to %d nodes", sp, n)
		}
	}
	return nil
}

// naiveMixedRoute builds the 2n-2 step route: first convert the row field
// of the node address to the target's column-half encoding (a conversion
// within each column subcube), then convert the column field (within each
// row subcube), then run the standard n-step transpose (paired row/column
// dimensions, highest first).
func naiveMixedRoute(src, dst uint64, n int) [][]int {
	h := n / 2
	srcRow, srcCol := bits.Split(src, h, h)
	dstRow, dstCol := bits.Split(dst, h, h)
	// After conversions the node holds address (a || b) with a = dstCol
	// (the value the transpose will move into the column half) and
	// b = dstRow.
	var dims []int
	rowConv := srcRow ^ dstCol
	for i := h - 1; i >= 0; i-- {
		if rowConv>>uint(i)&1 == 1 {
			dims = append(dims, h+i)
		}
	}
	colConv := srcCol ^ dstRow
	for i := h - 1; i >= 0; i-- {
		if colConv>>uint(i)&1 == 1 {
			dims = append(dims, i)
		}
	}
	// Transpose (a || b) -> (b || a): a = dstCol, b = dstRow.
	swap := dstCol ^ dstRow
	for i := h - 1; i >= 0; i-- {
		if swap>>uint(i)&1 == 1 {
			dims = append(dims, h+i, i)
		}
	}
	return [][]int{dims}
}

// combinedMixedRoute folds conversion and transpose into n routing steps:
// iteration i (descending) routes row dimension h+i and column dimension i
// whenever source and destination addresses differ there (Section 6.3).
func combinedMixedRoute(src, dst uint64, n int) [][]int {
	h := n / 2
	rel := src ^ dst
	var dims []int
	for i := h - 1; i >= 0; i-- {
		if rel>>uint(h+i)&1 == 1 {
			dims = append(dims, h+i)
		}
		if rel>>uint(i)&1 == 1 {
			dims = append(dims, i)
		}
	}
	return [][]int{dims}
}

func transposeMixed(d *matrix.Dist, after field.Layout, opt Options, combined bool) (*Result, error) {
	n := d.Layout.NBits()
	if n%2 != 0 {
		return nil, fmt.Errorf("core: mixed transpose needs an even number of cube dimensions")
	}
	if err := mixedPermutation(newPlan(d.Layout, after, true)); err != nil {
		return nil, err
	}
	route := naiveMixedRoute
	if combined {
		route = combinedMixedRoute
	}
	return flowTranspose(d, after, opt, route)
}

// TransposeMixedNaive transposes a mixed-encoding matrix by separate code
// conversions followed by the transpose: up to 2n-2 routing steps.
func TransposeMixedNaive(d *matrix.Dist, after field.Layout, opt Options) (*Result, error) {
	return transposeMixed(d, after, opt, false)
}

// TransposeMixedCombined transposes a mixed-encoding matrix with the
// combined conversion-transpose algorithm: n routing steps.
func TransposeMixedCombined(d *matrix.Dist, after field.Layout, opt Options) (*Result, error) {
	return transposeMixed(d, after, opt, true)
}
