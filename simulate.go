package boolcube

import (
	"boolcube/internal/fabric"
	"boolcube/internal/simnet"
)

// Node is a processor handle inside a running program: Send, Recv,
// Exchange, Copy and Advance operations advance the node's clock under the
// machine model. It is the backend-neutral fabric.Node interface — the
// same program runs on the simulation or on a live transport. See Simulate.
type Node = fabric.Node

// Msg is a message between processors.
type Msg = fabric.Msg

// LinkLoad reports the traffic carried by one directed cube link.
type LinkLoad = fabric.LinkLoad

// Backends lists the registered fabric backend names, sorted — "simnet"
// (the default deterministic simulation) and "livenet" (the real
// goroutine-per-node transport). Select one with Options.Backend or
// ExecOptions.Backend.
func Backends() []string { return fabric.Backends() }

// BackendCapabilities returns what a registered backend promises
// (determinism, virtual time, fault injection, tracing); ok is false for
// unknown names. The empty name reports on the default backend.
func BackendCapabilities(name string) (caps fabric.Capabilities, ok bool) {
	return fabric.Caps(name)
}

// UnknownBackendError is the typed error a run returns when Options.Backend
// names a backend nothing registered.
type UnknownBackendError = fabric.UnknownBackendError

// Simulate runs prog on every node of an n-cube under the machine model
// and returns the simulated cost. This is the substrate all the library's
// algorithms run on; it is exposed so custom hypercube algorithms can be
// written and measured directly:
//
//	stats, err := boolcube.Simulate(3, boolcube.IPSC(), func(nd boolcube.Node) {
//		m := nd.Exchange(0, boolcube.Msg{Data: []float64{float64(nd.ID())}})
//		_ = m
//	})
//
// Runs are deterministic: identical programs produce identical stats.
func Simulate(n int, mach Machine, prog func(Node)) (Stats, error) {
	e, err := simnet.New(n, commMachine(mach))
	if err != nil {
		return Stats{}, err
	}
	if err := e.Run(prog); err != nil {
		return Stats{}, err
	}
	return e.Stats(), nil
}

// SimulateLoads is Simulate but also returns the per-link traffic.
func SimulateLoads(n int, mach Machine, prog func(Node)) (Stats, []LinkLoad, error) {
	e, err := simnet.New(n, commMachine(mach))
	if err != nil {
		return Stats{}, nil, err
	}
	if err := e.Run(prog); err != nil {
		return Stats{}, nil, err
	}
	return e.Stats(), e.LinkLoads(), nil
}
