package cube

import (
	"fmt"

	"boolcube/internal/bits"
)

// This file implements the path systems of Section 6.1: the Single Path
// Transpose (SPT), Dual Paths Transpose (DPT), and Multiple Paths Transpose
// (MPT) routes between node x = (x_r || x_c) and its transpose partner
// tr(x) = (x_c || x_r), together with the ~ad (same anti-diagonal) and ~s
// equivalence relations used in Lemmas 10-14.

// Tr returns the transpose partner tr(x) = (x_c || x_r) of node x in an
// n-cube with n even.
func Tr(x uint64, n int) uint64 {
	return bits.SwapHalves(x, n)
}

// HalfHamming returns H(x) = Hamming(x_r, x_c), so that the distance from x
// to tr(x) is 2H(x) (Section 6.1).
func HalfHamming(x uint64, n int) int {
	h := n / 2
	xr, xc := bits.Split(x, h, h)
	return bits.Hamming(xr, xc, h)
}

// routeDims returns the 2H(x) dimensions that must be routed, as the
// paper's α (row dims, descending) and β (column dims, descending) with
// α[H-1] the highest: alpha[j] = h + i_j and beta[j] = i_j where
// i_{H-1} > ... > i_0 are the bit positions at which x_r and x_c differ.
func routeDims(x uint64, n int) (alpha, beta []int) {
	h := n / 2
	xr, xc := bits.Split(x, h, h)
	diff := xr ^ xc
	for i := 0; i < h; i++ {
		if bits.Bit(diff, i) == 1 {
			alpha = append(alpha, h+i)
			beta = append(beta, i)
		}
	}
	return alpha, beta
}

// SPTPath returns the Single Path Transpose route from x to tr(x): the
// differing dimensions visited from highest to lowest order, row dimension
// before the paired column dimension. The length is 2H(x); it is empty for
// diagonal nodes (x_r == x_c).
func SPTPath(x uint64, n int) []int {
	checkEven(n)
	alpha, beta := routeDims(x, n)
	H := len(alpha)
	dims := make([]int, 0, 2*H)
	for j := H - 1; j >= 0; j-- {
		dims = append(dims, alpha[j], beta[j])
	}
	return dims
}

// DPTPaths returns the two directed edge-disjoint routes of the Dual Paths
// Transpose: the SPT path and its row/column-swapped counterpart (paths 0
// and H(x) of the MPT system).
func DPTPaths(x uint64, n int) [][]int {
	checkEven(n)
	all := MPTPaths(x, n)
	if len(all) == 0 {
		return nil
	}
	H := len(all) / 2
	return [][]int{all[0], all[H]}
}

// MPTPaths returns the 2H(x) pairwise edge-disjoint routes of the Multiple
// Paths Transpose, labeled 0..2H(x)-1 exactly as in Section 6.1.3. Path 0
// equals the SPT path; paths 0 and H(x) are the DPT pair. Diagonal nodes
// get no paths.
func MPTPaths(x uint64, n int) [][]int {
	checkEven(n)
	alpha, beta := routeDims(x, n)
	H := len(alpha)
	if H == 0 {
		return nil
	}
	paths := make([][]int, 2*H)
	for p := 0; p < H; p++ {
		dims := make([]int, 0, 2*H)
		for t := H - 1; t >= 0; t-- {
			j := (p + t) % H
			dims = append(dims, alpha[j], beta[j])
		}
		paths[p] = dims
	}
	for p := H; p < 2*H; p++ {
		j0 := p - H
		dims := make([]int, 0, 2*H)
		for t := H - 1; t >= 0; t-- {
			j := (j0 + t) % H
			dims = append(dims, beta[j], alpha[j])
		}
		paths[p] = dims
	}
	return paths
}

// SameAntiDiagonal reports x' ~ad x” (Definition 12): the integer sums of
// the row and column halves agree.
func SameAntiDiagonal(x1, x2 uint64, n int) bool {
	h := n / 2
	r1, c1 := bits.Split(x1, h, h)
	r2, c2 := bits.Split(x2, h, h)
	return r1+c1 == r2+c2
}

// SameS reports x' ~s x” (Definition 15): same anti-diagonal and the same
// XOR with the transpose partner.
func SameS(x1, x2 uint64, n int) bool {
	return SameAntiDiagonal(x1, x2, n) &&
		x1^Tr(x1, n) == x2^Tr(x2, n)
}

// SClass returns all nodes equivalent to x under ~s, including x itself.
func SClass(x uint64, n int) []uint64 {
	checkEven(n)
	var out []uint64
	for y := uint64(0); y < 1<<uint(n); y++ {
		if SameS(x, y, n) {
			out = append(out, y)
		}
	}
	return out
}

func checkEven(n int) {
	if n%2 != 0 {
		panic(fmt.Sprintf("cube: transpose path systems need even n, got %d", n))
	}
}
