package exper

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Par runs job(i) for every i in [0, n) across a bounded worker pool and
// returns the results in index order. workers <= 0 selects GOMAXPROCS.
//
// The merge is canonical: results are stored at their own index and the
// returned error (if any) is the one from the lowest failing index, so the
// outcome — including which error surfaces — is a pure function of the jobs
// and independent of worker count and goroutine scheduling. That is what
// lets the sweep harness fan out across cores while staying byte-identical
// to a serial run.
//
// Jobs must be independent: they run concurrently, so anything they share
// must be read-only or synchronized (each simulation job builds its own
// engine; the plan cache is already concurrency-safe).
func Par[T any](n, workers int, job func(int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = job(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = job(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunMany generates the given experiments, up to workers at a time
// (workers <= 0 selects GOMAXPROCS), returning the tables in input order.
// Output is byte-identical to running the ids serially: generation order
// does not affect any table, and the merge preserves the input order.
func RunMany(ids []string, workers int) ([]*Table, error) {
	return Par(len(ids), workers, func(i int) (*Table, error) {
		t, err := Run(ids[i])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ids[i], err)
		}
		return t, nil
	})
}
