package router

import (
	"fmt"
	"math"
	"sort"

	"boolcube/internal/machine"
)

// This file models circuit-switched (cut-through) routing, the behaviour of
// the Connection Machine's bit-serial pipelined communication system
// (Section 8.2.2): a message reserves its whole path, pays the start-up τ
// once and a small per-hop header latency, and then streams its body at
// t_c per byte regardless of distance. Contention is at path granularity:
// a transmission begins when every link on its route is free.
//
// The scheduler is deterministic: transmissions start in earliest-possible-
// time order with flow index as the tie breaker.

// CutThroughStats summarizes a circuit-switched schedule.
type CutThroughStats struct {
	Time         float64 // makespan, µs
	Startups     int64
	Bytes        int64
	MaxLinkBytes int64
	MaxWait      float64 // longest time a flow waited on busy links
}

// HopLatency is the per-hop header forwarding delay of the cut-through
// router, as a fraction of τ. The CM's routing cycle is small relative to
// the message start-up.
const HopLatency = 0.1

// CutThrough schedules the flows under circuit switching and returns the
// aggregate statistics. Flow payload sizes are taken from Data (in
// elements, converted with the machine's element size); routes must be
// valid as in Run.
func CutThrough(n int, p machine.Params, flows []Flow) (CutThroughStats, error) {
	type pending struct {
		idx   int
		edges []linkID
		dur   float64
		bytes int
	}
	var st CutThroughStats
	linkFree := make(map[linkID]float64)
	linkBytes := make(map[linkID]int64)

	items := make([]pending, 0, len(flows))
	for i, f := range flows {
		x := f.Src
		edges := make([]linkID, 0, len(f.Dims))
		for _, d := range f.Dims {
			if d < 0 || d >= n {
				return st, fmt.Errorf("router: flow %d dimension %d out of range", i, d)
			}
			edges = append(edges, linkID{from: x, dim: d})
			x ^= 1 << uint(d)
		}
		if x != f.Dst {
			return st, fmt.Errorf("router: flow %d route ends at %d, not %d", i, x, f.Dst)
		}
		if len(edges) == 0 {
			continue // local
		}
		bytes := len(f.Data) * p.ElemBytes
		// One start-up, per-hop header latency, pipelined body.
		dur := p.Tau + float64(len(edges)-1)*HopLatency*p.Tau + float64(bytes)*p.Tc
		items = append(items, pending{idx: i, edges: edges, dur: dur, bytes: bytes})
	}

	remaining := items
	for len(remaining) > 0 {
		// Pick the flow that can start earliest (ties by flow index).
		best := -1
		bestT := math.Inf(1)
		for j, it := range remaining {
			t := 0.0
			for _, e := range it.edges {
				if f := linkFree[e]; f > t {
					t = f
				}
			}
			if t < bestT || (t == bestT && (best == -1 || remaining[j].idx < remaining[best].idx)) {
				bestT = t
				best = j
			}
		}
		it := remaining[best]
		remaining = append(remaining[:best:best], remaining[best+1:]...)
		end := bestT + it.dur
		for _, e := range it.edges {
			linkFree[e] = end
			linkBytes[e] += int64(it.bytes)
		}
		st.Startups++
		st.Bytes += int64(it.bytes)
		if bestT > st.MaxWait {
			st.MaxWait = bestT
		}
		if end > st.Time {
			st.Time = end
		}
	}
	for _, b := range linkBytes {
		if b > st.MaxLinkBytes {
			st.MaxLinkBytes = b
		}
	}
	return st, nil
}

type linkID struct {
	from uint64
	dim  int
}

// EcubeCutThroughAllPairs schedules one cut-through flow per (src, dst)
// pair of the permutation perm with `elems` elements each, over e-cube
// routes — the Connection Machine "routing logic" model.
func EcubeCutThroughAllPairs(n int, p machine.Params, perm func(uint64) uint64, elems int) (CutThroughStats, error) {
	if n < 0 || n > 30 {
		return CutThroughStats{}, fmt.Errorf("router: cube dimension %d out of range [0,30]", n)
	}
	N := uint64(1) << uint(n)
	flows := make([]Flow, 0, N)
	for s := uint64(0); s < N; s++ {
		d := perm(s)
		if d == s {
			continue
		}
		flows = append(flows, Flow{Src: s, Dst: d, Dims: Ecube(s, d, n),
			Data: make([]float64, elems)})
	}
	// Deterministic order.
	sort.Slice(flows, func(a, b int) bool { return flows[a].Src < flows[b].Src })
	return CutThrough(n, p, flows)
}
