// Delivery auditing: every payload a flow or exchange block carries can be
// stamped with a cheap Fletcher-style checksum at the point it is gathered
// from source data, and verified at the point it is reassembled into the
// destination. The checksum and the typed audit error are backend-neutral
// and live in internal/fabric; the aliases keep simnet's historical names.
package simnet

import (
	"boolcube/internal/fabric"
)

// Checksum is the delivery-audit checksum (fabric.Checksum): four
// interleaved Fletcher-style lanes over the raw IEEE-754 bit pattern of
// each element. Pure, position-sensitive, and never 0 — so 0 in Msg.Sum /
// Part.Sum always means "unaudited".
func Checksum(data []float64) uint64 { return fabric.Checksum(data) }

// ErrAudit is the sentinel a delivery-audit failure unwraps to (errors.Is).
var ErrAudit = fabric.ErrAudit

// AuditError reports a payload that arrived different from what was sent
// (fabric.AuditError).
type AuditError = fabric.AuditError
