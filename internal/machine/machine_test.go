package machine

import (
	"math"
	"testing"
)

func TestValidateAll(t *testing.T) {
	for _, p := range []Params{IPSC(), IPSCNPort(), ConnectionMachine(), Ideal(OnePort), Ideal(NPort)} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBad(t *testing.T) {
	p := IPSC()
	p.Tau = -1
	if err := p.Validate(); err == nil {
		t.Error("negative tau accepted")
	}
	p = IPSC()
	p.ElemBytes = 0
	if err := p.Validate(); err == nil {
		t.Error("zero elem bytes accepted")
	}
	p = IPSC()
	p.Tc = math.NaN()
	if err := p.Validate(); err == nil {
		t.Error("NaN tc accepted")
	}
}

func TestSendTimePacketized(t *testing.T) {
	p := IPSC()
	// 1 byte: one packet.
	d, s := p.SendTime(1)
	if s != 1 || d != p.Tau+p.Tc {
		t.Errorf("1 byte: dur=%v startups=%d", d, s)
	}
	// Exactly one packet boundary.
	d, s = p.SendTime(1024)
	if s != 1 || d != p.Tau+1024*p.Tc {
		t.Errorf("1024 bytes: dur=%v startups=%d", d, s)
	}
	// One byte over: two packets.
	d, s = p.SendTime(1025)
	if s != 2 || d != 2*p.Tau+1025*p.Tc {
		t.Errorf("1025 bytes: dur=%v startups=%d", d, s)
	}
	// Zero bytes: free.
	d, s = p.SendTime(0)
	if s != 0 || d != 0 {
		t.Errorf("0 bytes: dur=%v startups=%d", d, s)
	}
}

func TestSendTimePipelined(t *testing.T) {
	p := ConnectionMachine()
	d, s := p.SendTime(100000)
	if s != 1 {
		t.Errorf("pipelined machine counted %d startups", s)
	}
	if d != p.Tau+100000*p.Tc {
		t.Errorf("pipelined dur = %v", d)
	}
}

// The iPSC copy model must reproduce the paper's two calibration points:
// ~37 ms per 4 KB (Figure 9) and ~one start-up (5 ms) per 256 B copy.
func TestIPSCCopyCalibration(t *testing.T) {
	p := IPSC()
	got4k := p.CopyTime(4096)
	if math.Abs(got4k-37000) > 500 {
		t.Errorf("copy(4KB) = %v µs, want ≈ 37000", got4k)
	}
	got256 := p.CopyTime(256)
	if math.Abs(got256-p.Tau) > 150 {
		t.Errorf("copy(256B) = %v µs, want ≈ τ = %v", got256, p.Tau)
	}
}

func TestCopyTimeMonotone(t *testing.T) {
	p := IPSC()
	prev := 0.0
	for b := 0; b <= 1<<16; b += 1024 {
		c := p.CopyTime(b)
		if c < prev {
			t.Fatalf("copy time not monotone at %d bytes", b)
		}
		prev = c
	}
}
