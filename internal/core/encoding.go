package core

import (
	"fmt"

	"boolcube/internal/field"
	"boolcube/internal/matrix"
	"boolcube/internal/plan"
	"boolcube/internal/router"
)

// This file implements the standalone Gray-code/binary-code conversion the
// paper builds on (Sections 2 and 6.3, citing [10]): converting the
// embedding of a distributed matrix between encodings without transposing
// it. Since binary and Gray codes agree on the most significant bit, the
// conversion of an n-bit field needs data movement across at most n-1
// dimensions; the routes used here scan from the most significant changed
// bit down, which makes paths for different nodes edge-disjoint.

// ConvertEncoding redistributes d into the after layout of the same matrix
// (same shape, same partitioning structure, different encodings). The
// redistribution must be a node permutation — true for pure encoding
// changes of the same fields — and is routed with one flow per node, most
// significant differing dimension first.
func ConvertEncoding(d *matrix.Dist, after field.Layout, opt Options) (*Result, error) {
	before := d.Layout
	if after.P != before.P || after.Q != before.Q {
		return nil, fmt.Errorf("core: encoding conversion requires the same matrix shape")
	}
	if after.NBits() != before.NBits() {
		return nil, fmt.Errorf("core: encoding conversion requires the same processor count")
	}
	pl, err := plan.NewMoves(before, after, false)
	if err != nil {
		return nil, err
	}
	for sp := 0; sp < before.N(); sp++ {
		if len(pl.Destinations(uint64(sp))) > 1 {
			return nil, fmt.Errorf("core: layout pair is not a node permutation (node %d scatters)", sp)
		}
	}

	e, n, err := engineFor(before, after, opt)
	if err != nil {
		return nil, err
	}
	applyTracer(e, opt)
	var flows []router.Flow
	for sp := 0; sp < before.N(); sp++ {
		src := uint64(sp)
		for _, dp := range pl.Destinations(src) {
			var dims []int
			rel := src ^ dp
			for i := n - 1; i >= 0; i-- {
				if rel>>uint(i)&1 == 1 {
					dims = append(dims, i)
				}
			}
			pk := opt.Packets
			if pk < 1 {
				pk = 1
				if bm := opt.Machine.Bm; bm > 0 {
					cb := before.LocalSize() * opt.Machine.ElemBytes
					pk = (cb + bm - 1) / bm
					if pk < 1 {
						pk = 1
					}
				}
			}
			flows = append(flows, router.Flow{
				Src: src, Dst: dp, Dims: dims,
				Data:    pl.Gather(src, d.Local[sp], dp),
				Packets: pk,
			})
		}
	}
	deliveries, err := router.Run(e, flows)
	if err != nil {
		// The ad-hoc flow set is built outside any *plan.Plan, so Resume —
		// which replays a plan's residual move-set — has nothing to work
		// from; propagate the router failure as-is.
		return nil, err //cubevet:ignore ckptsafe -- ad-hoc flows carry no plan move-set; Resume requires one
	}
	loc := newLocal(after, e.Nodes())
	for dp := 0; dp < after.N(); dp++ {
		out := loc[dp]
		for _, del := range deliveries[uint64(dp)] {
			pl.Scatter(uint64(dp), out, del.Src, del.Data)
		}
		self := pl.Gather(uint64(dp), d.Local[dp], uint64(dp))
		pl.Scatter(uint64(dp), out, uint64(dp), self)
	}
	return &Result{Dist: finishDist(after, loc), Stats: e.Stats()}, nil
}
