package simnet

import (
	"math"
	"testing"

	"boolcube/internal/fabric"
	"boolcube/internal/fault"
)

// Drop trace events carry enough detail to debug a faulted run from the
// trace alone: the 1-based attempt that failed, and how long the link
// stays down (+Inf for a permanent failure, the window end for transient).
func TestDropTraceCarriesAttemptAndWindow(t *testing.T) {
	e := faultEngine(t, 1, fault.FlakyLink(0, 0, 1), RetryPolicy{Attempts: 3})
	tr := &recordTracer{}
	e.SetTracer(tr)
	e.Run(func(nd fabric.Node) {
		if nd.ID() == 0 {
			nd.Send(0, Msg{Data: []float64{1}})
		} else {
			nd.Recv(0)
		}
	})
	var drops []TraceEvent
	for _, ev := range tr.events {
		if ev.Kind == "drop" {
			drops = append(drops, ev)
		}
	}
	if len(drops) != 3 {
		t.Fatalf("got %d drop events, want 3 (retry budget)", len(drops))
	}
	for i, ev := range drops {
		if ev.Attempt != i+1 {
			t.Errorf("drop %d: Attempt = %d, want %d", i, ev.Attempt, i+1)
		}
	}
}

func TestDownWindowInDropTrace(t *testing.T) {
	// A link down on [0, 10) with a zero retry budget: the failed send's
	// drop event must report DownUntil = 10.
	spec := fault.Spec{Rules: []fault.Rule{
		{Kind: fault.LinkDown, Link: fault.Link{From: 0, Dim: 0}, Start: 0, End: 10},
	}}
	e := faultEngine(t, 1, spec, RetryPolicy{})
	tr := &recordTracer{}
	e.SetTracer(tr)
	err := e.Run(func(nd fabric.Node) {
		if nd.ID() == 0 {
			nd.Send(0, Msg{Data: []float64{1}})
		} else {
			nd.Recv(0)
		}
	})
	if err != nil {
		t.Fatalf("transient window should be waited out, got %v", err)
	}
	sawWindow := false
	for _, ev := range tr.events {
		if ev.Kind == "drop" && ev.DownUntil == 10 {
			sawWindow = true
		}
	}
	if !sawWindow {
		t.Fatal("waited-out transient window left no drop event with DownUntil=10")
	}
	// Permanent failures must report an unbounded window.
	e2 := faultEngine(t, 1, fault.SingleLinkDown(0, 0), RetryPolicy{})
	tr2 := &recordTracer{}
	e2.SetTracer(tr2)
	e2.Run(func(nd fabric.Node) {
		if nd.ID() == 0 {
			nd.Send(0, Msg{Data: []float64{1}})
		} else {
			nd.Recv(0)
		}
	})
	found := false
	for _, ev := range tr2.events {
		if ev.Kind == "drop" {
			found = true
			if !math.IsInf(ev.DownUntil, 1) {
				t.Errorf("permanent link drop: DownUntil = %v, want +Inf", ev.DownUntil)
			}
			if ev.Attempt != 1 {
				t.Errorf("Attempt = %d, want 1", ev.Attempt)
			}
		}
	}
	if !found {
		t.Fatal("no drop event for a permanently-down link")
	}
}
