package boolcube

import "boolcube/internal/trace"

// TraceRecorder records the per-node operation timeline of a simulated run;
// attach one via Options.Trace and render it with Gantt or Summary.
type TraceRecorder = trace.Recorder

// NewTrace returns an empty trace recorder.
func NewTrace() *TraceRecorder { return trace.New() }
