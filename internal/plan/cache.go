package plan

import (
	"sync"

	"boolcube/internal/field"
)

// cacheKey identifies a compilation. Layouts are keyed by their canonical
// String form (field.Layout itself is not comparable); machine.Params is an
// all-scalar struct and participates directly.
type cacheKey struct {
	alg           Algorithm
	before, after string
	cfg           Config
}

// entry holds one compilation slot. The sync.Once lets concurrent callers
// of the same key share a single compile without holding the cache lock
// while the O(P·Q) work runs.
type entry struct {
	once sync.Once
	p    *Plan
	err  error
}

// Cache is a keyed, concurrency-safe plan cache with deterministic FIFO
// eviction. Cached plans are sealed at compile time, so handing the same
// *Plan to concurrent executors is safe; compile errors are cached too
// (they are deterministic functions of the key).
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*entry
	order   []cacheKey // insertion order, for eviction
}

// NewCache returns a cache bounded to at most capacity plans (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, entries: make(map[cacheKey]*entry)}
}

// Default is the process-wide cache used by the public Compile entry point
// and the experiment sweeps. 256 plans comfortably covers the paper's
// largest sweep (a few dozen layout/machine/algorithm combinations) while
// bounding memory on adversarial workloads.
var Default = NewCache(256)

// Compile returns the cached plan for the key, compiling it at most once.
// Eviction is FIFO over insertion order; an evicted entry that a caller
// still holds stays valid (plans are immutable), it just stops being
// shared.
func (c *Cache) Compile(alg Algorithm, before, after field.Layout, cfg Config) (*Plan, error) {
	k := cacheKey{alg: alg, before: before.String(), after: after.String(), cfg: cfg}
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &entry{}
		c.entries[k] = e
		c.order = append(c.order, k)
		for len(c.order) > c.cap {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if compileObserver != nil {
			compileObserver()
		}
		e.p, e.err = Compile(alg, before, after, cfg)
	})
	return e.p, e.err
}

// compileObserver, when non-nil, is invoked once per actual compilation
// (inside the sync.Once, before the work). Tests install it to assert the
// at-most-one-compile-per-key guarantee under concurrency; production code
// never sets it.
var compileObserver func()

// Len reports how many plans (or cached errors) the cache currently holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
