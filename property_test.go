package boolcube

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"boolcube/internal/core"
	"boolcube/internal/plan"
)

// oneDimCapable marks the algorithms the randomized property test may pair
// with one-dimensional layouts (the others require pairwise/two-dim shapes
// or specific encodings).
var oneDimCapable = map[Algorithm]bool{
	Exchange:     true,
	SBnT:         true,
	RoutingLogic: true,
}

// randomLayouts draws a random compatible layout pair for the algorithm:
// square two-dimensional splits in random storage (consecutive/cyclic) and
// encoding, or a one-dimensional row partition for the all-to-all
// algorithms; MixedPseudocode gets its required binary/Gray encodings.
func randomLayouts(rng *rand.Rand, alg Algorithm, p, q, n int) (before, after Layout) {
	if alg == MixedPseudocode {
		return TwoDimEncoded(p, q, n/2, n/2, Binary, Gray),
			TwoDimEncoded(q, p, n/2, n/2, Binary, Gray)
	}
	enc := Binary
	if rng.Intn(2) == 1 {
		enc = Gray
	}
	if oneDimCapable[alg] && p >= n && q >= n && rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return OneDimConsecutiveRows(p, q, n, enc), OneDimConsecutiveRows(q, p, n, enc)
		}
		return OneDimCyclicRows(p, q, n, enc), OneDimCyclicRows(q, p, n, enc)
	}
	if rng.Intn(2) == 0 {
		return TwoDimConsecutive(p, q, n/2, n/2, enc), TwoDimConsecutive(q, p, n/2, n/2, enc)
	}
	return TwoDimCyclic(p, q, n/2, n/2, enc), TwoDimCyclic(q, p, n/2, n/2, enc)
}

// Property: for ANY (layout, algorithm, machine, option) combination, the
// compile/execute split is indistinguishable from the one-shot entry point
// — both fail, or both succeed with element-exact results and bit-identical
// Stats. Randomized with a fixed seed, this extends the 11-case table of
// TestCompiledReplayMatchesOneShot across the whole configuration space.
func TestCompiledReplayMatchesOneShotRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	algos := Algorithms()
	machines := []Machine{IPSC(), IPSCNPort()}
	strategies := []Strategy{SingleMessage, Shuffled, Unbuffered, Buffered}

	const trials = 60
	executed := 0
	for i := 0; i < trials; i++ {
		alg := algos[rng.Intn(len(algos))]
		n := 2 + 2*rng.Intn(2)     // 2 or 4
		p := n/2 + 1 + rng.Intn(2) // enough rows for the split
		q := n/2 + 1 + rng.Intn(2)
		before, after := randomLayouts(rng, alg, p, q, n)
		opt := Options{
			Algorithm:   alg,
			Machine:     machines[rng.Intn(len(machines))],
			Strategy:    strategies[rng.Intn(len(strategies))],
			Packets:     rng.Intn(4),
			LocalCopies: rng.Intn(2) == 1,
		}
		name := fmt.Sprintf("trial %d: %v %s->%s on %s", i, alg, before, after, opt.Machine.Name)

		m := NewIotaMatrix(p, q)
		oneShot, errOne := Transpose(Scatter(m, before), after, opt)
		ct, errCompile := Compile(before, after, opt)
		if (errOne == nil) != (errCompile == nil) {
			t.Fatalf("%s: one-shot err = %v, compile err = %v", name, errOne, errCompile)
		}
		if errOne != nil {
			continue // invalid combination: both paths agree it is
		}
		if verr := oneShot.Dist.Verify(m.Transposed()); verr != nil {
			t.Fatalf("%s: one-shot result wrong: %v", name, verr)
		}
		res, err := ct.Execute(Scatter(m, before))
		if err != nil {
			t.Fatalf("%s: compiled execute failed where one-shot succeeded: %v", name, err)
		}
		if verr := res.Dist.Verify(m.Transposed()); verr != nil {
			t.Fatalf("%s: compiled result wrong: %v", name, verr)
		}
		if got, want := res.Stats.Logical(), oneShot.Stats.Logical(); got != want {
			t.Fatalf("%s: logical stats diverge:\ncompiled %+v\none-shot %+v", name, got, want)
		}
		if res.Stats != oneShot.Stats {
			t.Fatalf("%s: timing-derived stats diverge:\ncompiled %+v\none-shot %+v", name, res.Stats, oneShot.Stats)
		}
		executed++
	}
	if executed < trials/2 {
		t.Fatalf("only %d of %d random trials produced a valid configuration — generator too narrow", executed, trials)
	}
}

// Eviction safety, end to end: a plan evicted from a capacity-1 cache while
// other shapes churn through it must keep executing correctly — including
// concurrently with the churn — because plans are immutable and eviction
// only stops the sharing.
func TestEvictedPlanStillExecutes(t *testing.T) {
	p, q, n := 4, 4, 4
	cache := plan.NewCache(1)
	cfg := core.Options{Machine: IPSCNPort()}.PlanConfig()
	before := TwoDimConsecutive(p, q, n/2, n/2, Binary)
	after := TwoDimConsecutive(q, p, n/2, n/2, Binary)
	held, err := cache.Compile(plan.MPT, before, after, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewIotaMatrix(p, q)
	want := m.Transposed()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churn: evict `held` over and over
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := cache.Compile(plan.SPT, before, after, cfg); err != nil {
				panic(err)
			}
			if _, err := cache.Compile(plan.DPT, before, after, cfg); err != nil {
				panic(err)
			}
		}
	}()
	errCh := make(chan error, 1)
	go func() { // keep executing the held (evicted) plan
		defer wg.Done()
		for i := 0; i < 20; i++ {
			res, err := core.Execute(held, Scatter(m, before), nil)
			if err != nil {
				errCh <- err
				return
			}
			if verr := res.Dist.Verify(want); verr != nil {
				errCh <- verr
				return
			}
		}
		errCh <- nil
	}()
	wg.Wait()
	if err := <-errCh; err != nil {
		t.Fatalf("evicted plan failed mid-execute: %v", err)
	}
}
