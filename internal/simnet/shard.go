// Sharded epoch-synchronized execution: the engine partitioned across P
// worker shards, bit-identical to the serial indexed scheduler.
//
// The scheduler exploits the cost model's lookahead: every transmission of
// at least one element takes at least minDur = SendTime(ElemBytes) virtual
// time, so an operation executed at time t cannot make any arrival land
// before t + minDur. Each round (epoch) the coordinator takes the global
// minimum pending action time T and sets a horizon T + minDur; every shard
// may then execute all of its own nodes' operations with action time in
// [T, horizon) independently, in shard-local (time, node id) order, because
// no operation another shard executes in the same window can deliver an
// arrival inside it. Cross-shard sends are staged in a per-shard outbox and
// committed to the destination queues at the epoch barrier.
//
// Determinism does not depend on the shard count. Queue contents are
// per-(sender, dimension) FIFO and each directed link has exactly one
// sender, so delivery order within a queue is the sender's program order
// regardless of when the barrier runs; RecvAny choices are ordered by the
// (arrival time, send action time, sender id) key (see Node.anyLess), a
// pure function of simulation state. The shard-invariance property test
// (shard_test.go) pins P ∈ {1, 2, 4, GOMAXPROCS} to byte-identical traces,
// Stats and link loads against both serial schedulers.
//
// Two accounting modes keep Stats and traces exact:
//
//   - Fast mode (no tracer, no faults, no deadline): statistics are either
//     order-invariant (integer counters, maxima) or per-node (copy time),
//     so shards accumulate locally and the coordinator folds at the end.
//
//   - Record mode (tracer, faults or a finite deadline): every operation
//     appends a commit record keyed by (action time, node id, per-node op
//     index) — exactly the serial execution order — and the coordinator
//     applies records (and flushes their trace events) in sorted key order
//     at each barrier. On a failure or deadline abort, records past the
//     canonical failure key are discarded, so Stats, LinkLoads and traces
//     match the serial engine even on abort paths. (Node programs in other
//     shards may have over-executed by up to one epoch — user-visible only
//     through side effects the program itself wrote; every engine-reported
//     artifact is exact.)
//
// Within an epoch a shard resumes a node and waits for it to park again;
// during that window the node may execute further operations of its own
// eagerly (Node.tryEager) without the park/resume channel round-trip,
// whenever the operation is provably inside the epoch (action < horizon):
// sends touch only sender-owned state, a receive's queue front is final
// (single-sender FIFO), and a RecvAny whose action is inside the epoch
// cannot be beaten by an undelivered arrival (those land at or past the
// horizon). Halving the channel round-trips is what makes the sharded
// engine faster than the serial one even with a single worker.
package simnet

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
)

// autoShardNodes is the node count at which SetShards(0) engages the
// sharded scheduler on its own: below it (8-cube experiments and the whole
// historical test suite) the serial indexed scheduler is already fast, and
// staying serial keeps small runs on the most-proven path.
const autoShardNodes = 2048

// maxAutoShards caps the automatic worker count; property tests may force
// more via SetShards.
const maxAutoShards = 16

// SetShards selects the sharded epoch-parallel scheduler for the next Run:
//
//	p == 0  automatic (the default): shard when the cube has at least
//	        autoShardNodes nodes, with up to GOMAXPROCS workers;
//	p >= 1  force the sharded scheduler with exactly p worker shards
//	        (p == 1 still uses epochs and the eager in-node fast path);
//	p < 0   force the serial indexed scheduler regardless of size.
//
// The sharded scheduler produces bit-identical traces, Stats, link loads
// and errors to the serial schedulers for any p — the shard-invariance
// property test enforces it — so the choice is purely about host
// performance. Machines whose cost model admits zero-duration transmissions
// (no per-element cost) fall back to the serial scheduler: the epoch
// horizon would be empty. Must be called before Run.
func (e *Engine) SetShards(p int) { e.shards = p }

// shardLookahead is the minimum virtual duration of any nonempty
// transmission under the machine model — the epoch width.
func (e *Engine) shardLookahead() float64 {
	dur, _ := e.params.SendTime(e.params.ElemBytes)
	return dur
}

// shardCount resolves the SetShards setting to a worker count for this
// run; 0 means "use the serial indexed scheduler".
func (e *Engine) shardCount() int {
	if e.shards < 0 || e.n == 0 {
		return 0
	}
	if e.shardLookahead() <= 0 {
		return 0 // zero-duration sends defeat the epoch horizon
	}
	p := e.shards
	if p == 0 {
		if e.nodesCount < autoShardNodes {
			return 0
		}
		// The worker count influences host scheduling only, never results
		// (shard-invariance property): sizing it to the host is safe.
		p = runtime.GOMAXPROCS(0) //cubevet:ignore detbreak -- worker count is result-invariant; the shard-invariance property test pins P to bit-identical outcomes
		if p > maxAutoShards {
			p = maxAutoShards
		}
	}
	if p > e.nodesCount {
		p = e.nodesCount
	}
	return p
}

// statAcc is a shard's fast-mode statistics accumulator: integer counters
// (exact under any summation order) and a local time maximum.
type statAcc struct {
	sends, startups, bytes, copyBytes int64
	retries, drops, faultedSends      int64
	maxTime                           float64
}

// opRec is one operation's record-mode commit record. Records are sorted
// by (act, node, opIdx) — the serial execution order — before application.
type opRec struct {
	act   float64
	node  int32
	opIdx int32
	sh    int32 // owning shard, to resolve the event range
	li    int32 // charged link index, -1 when no charge happened

	linkBytes int64 // link + volume deltas (all charges of the op summed)
	linkBusy  float64
	startups  int64
	copyBytes int64
	copyDt    float64
	timeBump  float64

	sends, retries, drops, faulted int32

	ev0, ev1 int32 // trace-event range in the owning shard's buffer
}

// staged is a cross-shard arrival waiting for the epoch barrier.
type staged struct {
	dest int32
	a    arrival
}

// failCand is a node failure observed during an epoch; the barrier
// surfaces the one with the smallest key, which is the failure the serial
// engine would have hit first.
type failCand struct {
	act   float64
	node  int32
	opIdx int32
	err   error
}

func (f *failCand) before(g *failCand) bool {
	if f.act != g.act {
		return f.act < g.act
	}
	if f.node != g.node {
		return f.node < g.node
	}
	return f.opIdx < g.opIdx
}

// recBefore orders a record against a failure key (inclusive commit: the
// failing operation's own record is applied).
func recAfterFail(r *opRec, f *failCand) bool {
	if r.act != f.act {
		return r.act > f.act
	}
	if r.node != f.node {
		return r.node > f.node
	}
	return r.opIdx > f.opIdx
}

type shard struct {
	run *shardRun
	id  int

	heap  *readyHeap
	out   []staged // cross-shard arrivals staged this epoch
	dirty []int32  // intra-shard nodes whose queues grew this epoch

	fails []failCand

	// Record mode: per-op commit records plus their trace events.
	recs   []opRec
	events []TraceEvent
	cur    *opRec // open record of the operation being executed

	acc        statAcc
	doneCount  int
	crashCount int // crash-stops fired in this shard this epoch
}

type shardRun struct {
	e         *Engine
	shards    []shard
	shardSize int
	lookahead float64
	horizon   float64 // current epoch's horizon (written at barriers only)
	record    bool
	sortBuf   []opRec
}

// beginOp opens an operation executed at action time t on nd: bumps the
// node's canonical op counter and, in record mode, opens a commit record.
func (sh *shard) beginOp(nd *Node, t float64) {
	nd.opIdx++
	nd.lastAct = t
	if sh.run.record {
		ev := int32(len(sh.events))
		sh.recs = append(sh.recs, opRec{
			act: t, node: int32(nd.id), opIdx: nd.opIdx, sh: int32(sh.id),
			li: -1, ev0: ev, ev1: ev,
		})
		sh.cur = &sh.recs[len(sh.recs)-1]
	}
}

func (sh *shard) endOp() { sh.cur = nil }

// deliver routes one arrival from a node of this shard: intra-shard
// arrivals go straight into the destination queue (the shard loop is a
// serial engine over its own nodes), cross-shard arrivals wait for the
// barrier.
func (sh *shard) deliver(dest int, a arrival) {
	run := sh.run
	if ds := &run.shards[dest/run.shardSize]; ds != sh {
		sh.out = append(sh.out, staged{dest: int32(dest), a: a})
		return
	}
	run.e.nodes[dest].queues[a.fromDim].push(a)
	sh.dirty = append(sh.dirty, int32(dest))
}

// refresh re-keys node i in this shard's ready queue (mirrors
// Engine.refreshNode for the per-shard heap).
func (sh *shard) refresh(i int) {
	nd := sh.run.e.nodes[i]
	if nd.done || nd.crashed {
		sh.heap.remove(i)
		return
	}
	if t, ok := sh.run.e.actionTime(nd); ok {
		sh.heap.update(i, t)
	} else {
		sh.heap.remove(i)
	}
}

// runEpoch executes this shard's operations with action time inside
// [epoch start, horizon), in shard-local (time, node id) order — exactly
// the serial engine restricted to this shard's nodes.
func (sh *shard) runEpoch() {
	e := sh.run.e
	horizon := sh.run.horizon
	deadline := e.deadline
	h := sh.heap
	for {
		best := h.min()
		if best == -1 {
			break
		}
		nd := e.nodes[best]
		t := h.key[best]
		if t >= horizon {
			break
		}
		if t > deadline && nd.pending.kind != opDone {
			// The coordinator aborts once the global minimum passes the
			// deadline; everything at or under it still executes, exactly
			// as under the serial scheduler.
			break
		}
		if e.crashDue(best, t) {
			// Crash-stop at an operation boundary: no record, no resume —
			// the node's goroutine stays parked until drainAll unwinds it.
			e.crashNode(nd)
			sh.crashCount++
			h.remove(best)
			continue
		}
		if nd.pending.kind == opDone {
			sh.beginOp(nd, t)
			e.performOp(nd)
			sh.endOp()
			h.remove(best)
			nd.done = true
			sh.doneCount++
			continue
		}
		sh.beginOp(nd, t)
		m, _ := e.performOp(nd)
		sh.endOp()
		nd.resume <- m
		<-nd.parked // the node may run further ops eagerly before parking
		if nd.failure != nil && !nd.done {
			// Keep executing: a smaller-keyed failure may still be found
			// this epoch (the barrier surfaces the canonical minimum).
			nd.done = true
			h.remove(best)
			sh.fails = append(sh.fails, failCand{
				act: nd.lastAct, node: int32(nd.id), opIdx: nd.opIdx, err: nd.failure,
			})
		} else {
			sh.refresh(best)
		}
		for _, d := range sh.dirty {
			sh.refresh(int(d))
		}
		sh.dirty = sh.dirty[:0]
	}
}

// tryEager executes the node's next operation in the node's own goroutine,
// without parking, when it is provably safe: the action lies inside the
// current epoch (so no undelivered arrival — all of which land at or past
// the horizon — can influence its choice or be influenced by it) and does
// not overrun a finite deadline. The shard's worker is blocked waiting for
// this node to park, so the node is the only goroutine touching
// shard-owned state.
func (nd *Node) tryEager(o op) (Msg, bool) {
	sh := nd.sh
	e := nd.eng
	nd.pending = o
	t, ok := e.actionTime(nd)
	if !ok || t >= sh.run.horizon || t > e.deadline || e.crashDue(int(nd.id), t) {
		// A due crash must not execute eagerly: the node parks instead and
		// the shard loop crash-stops it at the canonical pop.
		return Msg{}, false
	}
	sh.beginOp(nd, t)
	m, _ := e.performOp(nd)
	sh.endOp()
	return m, true
}

// runSharded is the coordinator loop of the sharded scheduler.
func (e *Engine) runSharded(p int) error {
	// Surface prologue failures in node-id order, matching the serial
	// schedulers' scan.
	for _, nd := range e.nodes {
		if err := e.checkFailure(nd); err != nil {
			return err
		}
	}
	run := &shardRun{
		e:         e,
		shards:    make([]shard, p),
		shardSize: (e.nodesCount + p - 1) / p,
		lookahead: e.shardLookahead(),
		record:    e.tracer != nil || e.faults != nil || !math.IsInf(e.deadline, 1),
	}
	for i := range run.shards {
		sh := &run.shards[i]
		sh.run, sh.id = run, i
		sh.heap = newReadyHeap(e.nodesCount)
	}
	for i, nd := range e.nodes {
		sh := &run.shards[i/run.shardSize]
		nd.sh = sh
		if t, ok := e.actionTime(nd); ok {
			sh.heap.update(i, t)
		}
	}
	live := e.nodesCount
	for live > 0 {
		minT, minNode := run.globalMin()
		if minNode == -1 {
			fired, crashed := e.crashQuiesce()
			live -= fired
			if crashed {
				err := e.nodeDownError()
				e.drainAll()
				return err
			}
			err := e.deadlockError()
			e.drainAll()
			return err
		}
		if minT > e.deadline && e.nodes[minNode].pending.kind != opDone {
			err := e.deadlineError(e.nodes[minNode], minT)
			e.drainAll()
			return err
		}
		run.horizon = minT + run.lookahead
		if p == 1 {
			run.shards[0].runEpoch()
		} else {
			var wg sync.WaitGroup
			for i := range run.shards {
				sh := &run.shards[i]
				if sh.heap.min() == -1 {
					continue
				}
				wg.Add(1)
				go func(sh *shard) {
					defer wg.Done()
					sh.runEpoch()
				}(sh)
			}
			wg.Wait()
		}
		// Barrier. First route staged cross-shard arrivals — per queue
		// (one sender, one dimension) the outbox preserves sender program
		// order, so delivery order matches the serial engine's.
		for i := range run.shards {
			sh := &run.shards[i]
			for _, st := range sh.out {
				if st.a.at < run.horizon {
					// A transmission shorter than the lookahead crossed a
					// shard boundary — only possible for an empty payload,
					// which the horizon argument cannot cover. Refuse
					// loudly rather than risk a silent divergence.
					run.commit(nil)
					err := fmt.Errorf("simnet: internal: zero-duration cross-shard transmission (node %d, dim %d, t=%g) defeats the epoch horizon %g; run this program with SetShards(-1)",
						st.dest, st.a.fromDim, st.a.at, run.horizon)
					e.drainAll()
					return err
				}
				dest := e.nodes[st.dest]
				dest.queues[st.a.fromDim].push(st.a)
				dest.sh.refresh(int(st.dest))
			}
			sh.out = sh.out[:0]
		}
		// Surface the canonical (smallest-keyed) failure, if any.
		var fc *failCand
		for i := range run.shards {
			for j := range run.shards[i].fails {
				if f := &run.shards[i].fails[j]; fc == nil || f.before(fc) {
					fc = f
				}
			}
		}
		run.commit(fc)
		if fc != nil {
			err := fc.err
			if !run.record {
				run.foldFast()
			}
			e.drainAll()
			return err
		}
		for i := range run.shards {
			live -= run.shards[i].doneCount + run.shards[i].crashCount
			e.crashedCount += run.shards[i].crashCount
			run.shards[i].doneCount, run.shards[i].crashCount = 0, 0
		}
	}
	if !run.record {
		run.foldFast()
	}
	if e.crashedCount > 0 {
		err := e.nodeDownError()
		e.drainAll()
		return err
	}
	if e.stats.Time < e.maxResourceTime() {
		e.stats.Time = e.maxResourceTime()
	}
	return nil
}

// globalMin returns the smallest (action time, node id) pending key across
// all shards, or (-1) when nothing is executable.
func (run *shardRun) globalMin() (float64, int) {
	bestT, best := math.Inf(1), -1
	for i := range run.shards {
		h := run.shards[i].heap
		id := h.min()
		if id == -1 {
			continue
		}
		t := h.key[id]
		if best == -1 || t < bestT || (t == bestT && id < best) {
			bestT, best = t, id
		}
	}
	return bestT, best
}

// commit applies this epoch's records in canonical (act, node, opIdx)
// order — the serial execution order — stopping after the failure key when
// one is given (inclusive: the failing op's own record lands). No-op in
// fast mode.
func (run *shardRun) commit(fc *failCand) {
	if !run.record {
		return
	}
	all := run.sortBuf[:0]
	for i := range run.shards {
		all = append(all, run.shards[i].recs...)
	}
	slices.SortFunc(all, func(a, b opRec) int {
		if a.act != b.act {
			if a.act < b.act {
				return -1
			}
			return 1
		}
		if a.node != b.node {
			return int(a.node) - int(b.node)
		}
		return int(a.opIdx) - int(b.opIdx)
	})
	for i := range all {
		r := &all[i]
		if fc != nil && recAfterFail(r, fc) {
			break
		}
		run.applyRec(r)
	}
	run.sortBuf = all[:0]
	for i := range run.shards {
		run.shards[i].recs = run.shards[i].recs[:0]
		run.shards[i].events = run.shards[i].events[:0]
	}
}

// applyRec folds one committed record into the engine's statistics, link
// aggregates and tracer — the exact effects the serial engine applied
// inline while executing that operation.
func (run *shardRun) applyRec(r *opRec) {
	e := run.e
	if r.li >= 0 {
		e.linkUsed[r.li] = true
		e.linkBytes[r.li] += r.linkBytes
		e.linkBusy[r.li] += r.linkBusy
		if e.linkBytes[r.li] > e.stats.MaxLinkBytes {
			e.stats.MaxLinkBytes = e.linkBytes[r.li]
		}
		if e.linkBusy[r.li] > e.stats.MaxLinkBusy {
			e.stats.MaxLinkBusy = e.linkBusy[r.li]
		}
	}
	e.stats.Sends += int64(r.sends)
	e.stats.Startups += r.startups
	e.stats.Bytes += r.linkBytes
	e.stats.Retries += int64(r.retries)
	e.stats.Drops += int64(r.drops)
	e.stats.FaultedSends += int64(r.faulted)
	e.stats.CopyBytes += r.copyBytes
	e.copyTime[r.node] += r.copyDt
	if r.timeBump > e.stats.Time {
		e.stats.Time = r.timeBump
	}
	if e.tracer != nil {
		evs := run.shards[r.sh].events[r.ev0:r.ev1]
		for i := range evs {
			e.tracer.Record(evs[i])
		}
	}
}

// foldFast folds fast-mode shard accumulators into the engine's Stats. The
// counters are exact sums; the maxima are order-invariant, so taking them
// over the final link aggregates equals the serial engine's running
// maxima on any run that completed cleanly.
func (run *shardRun) foldFast() {
	e := run.e
	for i := range run.shards {
		a := &run.shards[i].acc
		e.stats.Sends += a.sends
		e.stats.Startups += a.startups
		e.stats.Bytes += a.bytes
		e.stats.CopyBytes += a.copyBytes
		e.stats.Retries += a.retries
		e.stats.Drops += a.drops
		e.stats.FaultedSends += a.faultedSends
		if a.maxTime > e.stats.Time {
			e.stats.Time = a.maxTime
		}
	}
	for li, used := range e.linkUsed {
		if !used {
			continue
		}
		if e.linkBytes[li] > e.stats.MaxLinkBytes {
			e.stats.MaxLinkBytes = e.linkBytes[li]
		}
		if e.linkBusy[li] > e.stats.MaxLinkBusy {
			e.stats.MaxLinkBusy = e.linkBusy[li]
		}
	}
}
