package plan

import (
	"testing"

	"boolcube/internal/field"
	"boolcube/internal/machine"
)

func TestDeliveredSpansCoalesce(t *testing.T) {
	d := NewDelivered()
	d.Add(1, 2, 0, 3)
	d.Add(1, 2, 5, 2)
	d.Add(1, 2, 3, 2) // fills the gap: [0,3)+[3,5)+[5,7) -> [0,7)
	spans := d.Spans(1, 2)
	if len(spans) != 1 || spans[0] != (Span{Off: 0, Len: 7}) {
		t.Fatalf("Spans = %v, want [{0 7}]", spans)
	}
	if d.Elems() != 7 {
		t.Fatalf("Elems = %d, want 7", d.Elems())
	}
}

func TestDeliveredOverlapsMergeOnce(t *testing.T) {
	d := NewDelivered()
	d.Add(0, 1, 2, 4)
	d.Add(0, 1, 4, 4) // overlaps [4,6)
	d.Add(0, 1, 0, 1)
	spans := d.Spans(0, 1)
	want := []Span{{Off: 0, Len: 1}, {Off: 2, Len: 6}}
	if len(spans) != 2 || spans[0] != want[0] || spans[1] != want[1] {
		t.Fatalf("Spans = %v, want %v", spans, want)
	}
	if d.Elems() != 7 {
		t.Fatalf("Elems = %d, want 7 (overlap double-counted?)", d.Elems())
	}
	// Pairs are independent.
	if got := d.Spans(1, 0); got != nil {
		t.Fatalf("untouched pair has spans %v", got)
	}
}

// resumePlan compiles a small SPT plan for Remaining tests.
func resumePlan(t *testing.T) *Plan {
	t.Helper()
	n := 4
	before := field.TwoDimConsecutive(4, 4, n/2, n/2, field.Binary)
	after := field.TwoDimConsecutive(4, 4, n/2, n/2, field.Binary)
	p, err := Compile(SPT, before, after, Config{Machine: machine.IPSC()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRemainingNilIsFullMoveSet(t *testing.T) {
	p := resumePlan(t)
	mv := p.Moves()
	full := p.Remaining(nil)
	elems := 0
	for _, r := range full {
		if r.Off != 0 {
			t.Fatalf("full residual %v does not start at 0", r)
		}
		if r.Len != mv.PayloadLen(r.Src, r.Dst) {
			t.Fatalf("residual %v shorter than payload %d", r, mv.PayloadLen(r.Src, r.Dst))
		}
		elems += r.Len
	}
	// The full residual must cover every element of every node's local array.
	want := p.Before().N() * p.Before().LocalSize()
	if elems != want {
		t.Fatalf("full residual covers %d elements, want %d", elems, want)
	}
}

func TestRemainingComplementsDelivered(t *testing.T) {
	p := resumePlan(t)
	full := p.Remaining(nil)
	d := NewDelivered()
	// Deliver the first pair fully and a middle slice of the second.
	r0, r1 := full[0], full[1]
	d.Add(r0.Src, r0.Dst, 0, r0.Len)
	d.Add(r1.Src, r1.Dst, 1, 1)
	rem := p.Remaining(d)
	for _, r := range rem {
		if r.Src == r0.Src && r.Dst == r0.Dst {
			t.Fatalf("fully delivered pair still has residual %v", r)
		}
	}
	var holes []Residual
	for _, r := range rem {
		if r.Src == r1.Src && r.Dst == r1.Dst {
			holes = append(holes, r)
		}
	}
	if len(holes) != 2 {
		t.Fatalf("punched pair residuals = %v, want 2 holes", holes)
	}
	if holes[0].Off != 0 || holes[0].Len != 1 || holes[1].Off != 2 || holes[1].Len != r1.Len-2 {
		t.Fatalf("holes = %v around delivered [1,2) of [0,%d)", holes, r1.Len)
	}
	// Residual + delivered = full move-set, by element count.
	remElems := 0
	for _, r := range rem {
		remElems += r.Len
	}
	fullElems := 0
	for _, r := range full {
		fullElems += r.Len
	}
	if remElems+d.Elems() != fullElems {
		t.Fatalf("residual %d + delivered %d != full %d", remElems, d.Elems(), fullElems)
	}
}

func TestRemainingEmptyWhenAllDelivered(t *testing.T) {
	p := resumePlan(t)
	d := NewDelivered()
	for _, r := range p.Remaining(nil) {
		d.Add(r.Src, r.Dst, 0, r.Len)
	}
	if rem := p.Remaining(d); len(rem) != 0 {
		t.Fatalf("fully delivered plan still has residuals %v", rem)
	}
}
