package core

import (
	"testing"

	"boolcube/internal/field"
	"boolcube/internal/machine"
	"boolcube/internal/matrix"
)

// The Section 5 standard-exchange program with its local shuffles delivers
// the transpose for square and rectangular matrices on several cube sizes.
func TestTransposeExchangePseudocode(t *testing.T) {
	cases := []struct{ p, q, n int }{
		{2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {5, 3, 3}, {3, 5, 3}, {4, 4, 1},
	}
	for _, c := range cases {
		before := field.OneDimConsecutiveRows(c.p, c.q, c.n, field.Binary)
		after := field.OneDimConsecutiveRows(c.q, c.p, c.n, field.Binary)
		m := matrix.NewIota(c.p, c.q)
		d := matrix.Scatter(m, before)
		res, err := TransposeExchangePseudocode(d, after, opts(machine.IPSC()))
		if err != nil {
			t.Fatalf("p=%d q=%d n=%d: %v", c.p, c.q, c.n, err)
		}
		if verr := res.Dist.Verify(m.Transposed()); verr != nil {
			t.Fatalf("p=%d q=%d n=%d: %v", c.p, c.q, c.n, verr)
		}
	}
}

// The literal program must cost the same as the analytical single-message
// exchange transpose, plus nothing: same start-up count, same volume.
func TestExchangePseudocodeCostMatches(t *testing.T) {
	p, q, n := 5, 5, 4
	before := field.OneDimConsecutiveRows(p, q, n, field.Binary)
	after := field.OneDimConsecutiveRows(q, p, n, field.Binary)
	m := matrix.NewIota(p, q)

	d1 := matrix.Scatter(m, before)
	lit, err := TransposeExchangePseudocode(d1, after, opts(machine.Ideal(machine.OnePort)))
	if err != nil {
		t.Fatal(err)
	}
	d2 := matrix.Scatter(m, before)
	ana, err := TransposeExchange(d2, after, opts(machine.Ideal(machine.OnePort)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lit.Stats.Logical(), ana.Stats.Logical(); got != want {
		t.Errorf("logical stats: literal %+v vs analytical %+v", got, want)
	}
	if lit.Stats.Time != ana.Stats.Time {
		t.Errorf("time: literal %v vs analytical %v", lit.Stats.Time, ana.Stats.Time)
	}
}

// The Section 5 SBnT program (per-port buffers, base routing, nearest-1-bit
// forwarding, n synchronized rounds) delivers the transpose.
func TestTransposeSBnTPseudocode(t *testing.T) {
	cases := []struct{ p, q, n int }{
		{2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {5, 3, 3}, {5, 5, 5},
	}
	for _, c := range cases {
		before := field.OneDimConsecutiveRows(c.p, c.q, c.n, field.Binary)
		after := field.OneDimConsecutiveRows(c.q, c.p, c.n, field.Binary)
		m := matrix.NewIota(c.p, c.q)
		d := matrix.Scatter(m, before)
		res, err := TransposeSBnTPseudocode(d, after, opts(machine.IPSCNPort()))
		if err != nil {
			t.Fatalf("p=%d q=%d n=%d: %v", c.p, c.q, c.n, err)
		}
		if verr := res.Dist.Verify(m.Transposed()); verr != nil {
			t.Fatalf("p=%d q=%d n=%d: %v", c.p, c.q, c.n, verr)
		}
	}
}

// With n-port communication the SBnT program must beat the one-port
// exchange program on transfer-dominated problems (Section 5's point).
func TestSBnTPseudocodeNPortAdvantage(t *testing.T) {
	p, q, n := 6, 6, 4
	mach := machine.Ideal(machine.NPort)
	mach.Tau = 0.001
	before := field.OneDimConsecutiveRows(p, q, n, field.Binary)
	after := field.OneDimConsecutiveRows(q, p, n, field.Binary)
	m := matrix.NewIota(p, q)

	d1 := matrix.Scatter(m, before)
	sbnt, err := TransposeSBnTPseudocode(d1, after, opts(mach))
	if err != nil {
		t.Fatal(err)
	}
	machOne := machine.Ideal(machine.OnePort)
	machOne.Tau = 0.001
	d2 := matrix.Scatter(m, before)
	exch, err := TransposeExchangePseudocode(d2, after, opts(machOne))
	if err != nil {
		t.Fatal(err)
	}
	if sbnt.Stats.Time >= exch.Stats.Time {
		t.Errorf("SBnT n-port (%v) not faster than one-port exchange (%v)",
			sbnt.Stats.Time, exch.Stats.Time)
	}
}

func TestPseudocode5RejectsBadLayouts(t *testing.T) {
	before := field.TwoDimConsecutive(4, 4, 2, 2, field.Binary)
	after := field.TwoDimConsecutive(4, 4, 2, 2, field.Binary)
	d := matrix.Scatter(matrix.NewIota(4, 4), before)
	if _, err := TransposeExchangePseudocode(d, after, opts(machine.IPSC())); err == nil {
		t.Error("2-D layouts accepted by the 1-D exchange pseudocode")
	}
	if _, err := TransposeSBnTPseudocode(d, after, opts(machine.IPSC())); err == nil {
		t.Error("2-D layouts accepted by the SBnT pseudocode")
	}
}
