package analysis

import "fmt"

// runIgnorereason audits the suppression directives themselves: every
// //cubevet:ignore must carry a "-- reason" so the tree records why each
// invariant was waived. A bare directive still suppresses its target pass
// (legacy trees degrade gracefully) but is reported here — and only a
// reasoned directive can suppress an ignorereason finding, so a bare ignore
// cannot hide its own audit.
func runIgnorereason(mod *Module, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, c := range ignoreComments(file) {
			target, reason := splitDirective(c.Text)
			if reason != "" {
				continue
			}
			what := "all passes"
			if target != "" {
				what = fmt.Sprintf("pass %q", target)
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(c.Pos()),
				Pass: "ignorereason",
				Message: fmt.Sprintf(
					"cubevet:ignore for %s without a justification; append \"-- <why>\" so the suppression is auditable", what),
			})
		}
	}
	return out
}
