package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"boolcube/internal/analysis/flow"
)

// runSharedwrite flags concurrent writes to captured shared state: closures
// launched as goroutines (go statements) or handed to exper.Par's worker
// pool must not assign to variables captured from the enclosing scope
// unless the write is partitioned or mediated. Exemptions:
//
//   - element writes indexed by a goroutine-local value (results[i] = v
//     where i is the closure's own variable or parameter), the Par idiom;
//   - element writes indexed by a per-iteration loop variable captured
//     from an enclosing for/range statement — Go 1.22 gives each iteration
//     its own binding, so spawning one goroutine per iteration partitions
//     the writes;
//   - writes preceded by a .Lock() call inside the closure (mutex
//     mediation).
//
// Everything else — counters, append to a shared slice, map inserts,
// last-write-wins result variables — races; use a channel, a mutex, or a
// per-goroutine slot.
func runSharedwrite(mod *Module, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		loopVars := loopVarObjects(p, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					out = append(out, p.checkSharedWrites(lit, loopVars, "goroutine")...)
				}
			case *ast.CallExpr:
				if calleeName(x) != "Par" {
					return true
				}
				for _, arg := range x.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						out = append(out, p.checkSharedWrites(lit, loopVars, "Par worker")...)
					}
				}
			}
			return true
		})
	}
	return out
}

// loopVarObjects collects every per-iteration loop variable in the file:
// range keys/values and for-init := bindings. Under Go 1.22 semantics each
// iteration gets a fresh binding, so indexing a captured write by one of
// these partitions the writes across the spawned goroutines.
func loopVarObjects(p *Package, file *ast.File) map[types.Object]bool {
	vars := map[types.Object]bool{}
	markDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if o := p.Info.Defs[id]; o != nil {
				vars[o] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			markDef(st.Key)
			markDef(st.Value)
		case *ast.ForStmt:
			if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					markDef(lhs)
				}
			}
		}
		return true
	})
	return vars
}

// checkSharedWrites reports unmediated writes to captured state in one
// concurrently-executed closure.
func (p *Package) checkSharedWrites(lit *ast.FuncLit, loopVars map[types.Object]bool, kind string) []Finding {
	scope := flow.NodeSpan(lit)
	litLocal := func(o types.Object) bool { return o != nil && scope.Contains(o.Pos()) }

	// Mutex mediation: a .Lock() call inside the closure blesses writes
	// positioned after it.
	var lockPos []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch calleeName(call) {
			case "Lock", "RLock":
				lockPos = append(lockPos, call.Pos())
			}
		}
		return true
	})
	locked := func(pos token.Pos) bool {
		for _, lp := range lockPos {
			if lp < pos {
				return true
			}
		}
		return false
	}

	// partitioned reports whether the written lvalue is indexed by a
	// goroutine-local or per-iteration value somewhere along its chain.
	partitioned := func(lhs ast.Expr) bool {
		part := false
		for e := ast.Unparen(lhs); !part; {
			switch x := e.(type) {
			case *ast.IndexExpr:
				ast.Inspect(x.Index, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if o := flow.ObjOf(p.Info, id); litLocal(o) || (o != nil && loopVars[o]) {
							part = true
							return false
						}
					}
					return true
				})
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			default:
				return part
			}
		}
		return part
	}

	var out []Finding
	for _, cap := range flow.Captures(p.Info, lit) {
		for _, w := range cap.Writes {
			if locked(w.Pos()) {
				continue
			}
			exempt := false
			switch st := w.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if root := flow.BaseIdent(lhs); root != nil && flow.ObjOf(p.Info, root) == cap.Obj {
						if partitioned(lhs) {
							exempt = true
						}
					}
				}
			case *ast.IncDecStmt:
				exempt = partitioned(st.X)
			}
			if exempt {
				continue
			}
			out = append(out, p.finding("sharedwrite", w, fmt.Sprintf(
				"%s writes captured %q without a goroutine-local index, lock, or channel; concurrent closures race on it — partition the writes or mediate them",
				kind, cap.Obj.Name())))
		}
	}
	return out
}
