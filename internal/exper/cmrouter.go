package exper

import (
	"boolcube/internal/bits"
	"boolcube/internal/core"
	"boolcube/internal/machine"
	"boolcube/internal/plan"
	"boolcube/internal/router"
)

func init() {
	register("cmrouter", cmRouter)
}

// cmRouter compares two models of the Connection Machine's communication
// system on the transpose permutation: per-hop store-and-forward of
// pipelined messages (the model behind fig16-18) versus circuit-switched
// cut-through, where a message reserves its whole path and distance costs
// only header latency. The CM's bit-serial pipelined router is closer to
// cut-through; both models produce the published shapes, and their gap
// quantifies the store-and-forward approximation error.
func cmRouter() (*Table, error) {
	t := &Table{
		ID:      "cmrouter",
		Title:   "Connection Machine router models: store-and-forward vs cut-through (transpose permutation)",
		Columns: []string{"cube dims n", "elems/proc", "store-and-forward (µs)", "cut-through (µs)", "S&F/CT"},
		Notes: []string{
			"cut-through pays distance only in header latency but reserves whole paths;",
			"store-and-forward pays a full message per hop but shares path segments,",
			"so cut-through wins on small cubes and loses ground as contention grows",
		},
	}
	p := machine.ConnectionMachine()
	for _, n := range []int{6, 8, 10} {
		for _, elems := range []int{1, 16, 64} {
			// Store-and-forward: simulated routing-logic transpose.
			logElems := n + log2int(elems)
			st, err := runTranspose(plan.RoutingLogic, logElems, n,
				core.Options{Machine: p})
			if err != nil {
				return nil, err
			}
			// Cut-through: scheduled circuit switching on the same routes.
			perm := func(x uint64) uint64 { return bits.RotL(x, n/2, n) }
			ct, err := router.EcubeCutThroughAllPairs(n, p, perm, elems)
			if err != nil {
				return nil, err
			}
			ratio := st.Time / ct.Time
			t.AddRow(n, elems, st.Time, ct.Time, formatFloat(ratio))
		}
	}
	return t, nil
}

func log2int(v int) int {
	k := 0
	for 1<<uint(k) < v {
		k++
	}
	return k
}
