package comm

import (
	"fmt"
	"math"
	"testing"

	"boolcube/internal/machine"
	"boolcube/internal/simnet"
)

// payload encodes (src, dst) identity into the data so delivery errors are
// detectable; size elements per block.
func payload(src, dst uint64, size int) []float64 {
	d := make([]float64, size)
	for i := range d {
		d[i] = float64(src)*1e6 + float64(dst)*1e3 + float64(i)
	}
	return d
}

func checkBlock(t *testing.T, data []float64, src, dst uint64, size int) {
	t.Helper()
	if len(data) != size {
		t.Fatalf("block (%d->%d): %d elems, want %d", src, dst, len(data), size)
	}
	for i, v := range data {
		want := float64(src)*1e6 + float64(dst)*1e3 + float64(i)
		if v != want {
			t.Fatalf("block (%d->%d)[%d] = %v, want %v", src, dst, i, v, want)
		}
	}
}

func newEngine(t *testing.T, n int, p machine.Params) *simnet.Engine {
	t.Helper()
	e, err := simnet.New(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAllToAllExchangeCorrectness(t *testing.T) {
	for _, strat := range []Strategy{SingleMessage, Shuffled, Unbuffered, Buffered} {
		for _, ports := range []machine.PortModel{machine.OnePort, machine.NPort} {
			t.Run(fmt.Sprintf("%v/%v", strat, ports), func(t *testing.T) {
				n, size := 4, 3
				e := newEngine(t, n, machine.Ideal(ports))
				got, err := AllToAllExchange(e, DescendingDims(n), strat,
					func(s, d uint64) []float64 { return payload(s, d, size) })
				if err != nil {
					t.Fatal(err)
				}
				N := uint64(e.Nodes())
				for x := uint64(0); x < N; x++ {
					if len(got[x]) != int(N) {
						t.Fatalf("node %d received %d blocks", x, len(got[x]))
					}
					for s := uint64(0); s < N; s++ {
						checkBlock(t, got[x][s], s, x, size)
					}
				}
			})
		}
	}
}

// Buffered strategy on the iPSC must use BCopy: small runs are copied.
func TestBufferedChargesCopies(t *testing.T) {
	n := 4
	p := machine.IPSC()
	e := newEngine(t, n, p)
	// 1 element (4 bytes) per block: every run below 256 bytes is buffered.
	_, err := AllToAllExchange(e, DescendingDims(n), Buffered,
		func(s, d uint64) []float64 { return payload(s, d, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().CopyBytes == 0 {
		t.Error("buffered strategy copied nothing")
	}
	// Unbuffered run for comparison: more start-ups, no copies.
	e2 := newEngine(t, n, p)
	_, err = AllToAllExchange(e2, DescendingDims(n), Unbuffered,
		func(s, d uint64) []float64 { return payload(s, d, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if e2.Stats().CopyBytes != 0 {
		t.Error("unbuffered strategy copied data")
	}
	if e2.Stats().Startups <= e.Stats().Startups {
		t.Errorf("unbuffered start-ups (%d) not above buffered (%d)",
			e2.Stats().Startups, e.Stats().Startups)
	}
}

// Section 3.2: exchange all-to-all with one message per step on a one-port
// machine costs exactly n*(K/2 * tc + τ) where K is the per-node data.
func TestExchangeTimingFormula(t *testing.T) {
	n, size := 4, 8
	e := newEngine(t, n, machine.Ideal(machine.OnePort))
	_, err := AllToAllExchange(e, DescendingDims(n), SingleMessage,
		func(s, d uint64) []float64 { return payload(s, d, size) })
	if err != nil {
		t.Fatal(err)
	}
	N := e.Nodes()
	K := N * size // elements (= bytes on the ideal machine) per node
	want := float64(n) * (float64(K)/2 + 1)
	if got := e.Stats().Time; math.Abs(got-want) > 1e-9 {
		t.Errorf("exchange time = %v, want %v", got, want)
	}
	// Start-ups: n per node... total N*n (each node sends one message per step).
	if got := e.Stats().Startups; got != int64(N*n) {
		t.Errorf("startups = %d, want %d", got, N*n)
	}
}

// Unbuffered start-up doubling: step k sends 2^k messages per node.
func TestUnbufferedStartupCount(t *testing.T) {
	n, size := 3, 4
	e := newEngine(t, n, machine.Ideal(machine.OnePort))
	_, err := AllToAllExchange(e, DescendingDims(n), Unbuffered,
		func(s, d uint64) []float64 { return payload(s, d, size) })
	if err != nil {
		t.Fatal(err)
	}
	// Per node: 1 + 2 + 4 = 7 messages; ideal machine: 1 startup each.
	want := int64(e.Nodes()) * 7
	if got := e.Stats().Startups; got != want {
		t.Errorf("unbuffered startups = %d, want %d", got, want)
	}
}

func TestAllToAllExchangeSubcube(t *testing.T) {
	// Exchange over dims {0, 2} only: 4 independent subcubes in a 4-cube.
	n, size := 4, 2
	e := newEngine(t, n, machine.Ideal(machine.OnePort))
	dims := []int{2, 0}
	got, err := AllToAllExchange(e, dims, SingleMessage,
		func(s, d uint64) []float64 { return payload(s, d, size) })
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < uint64(e.Nodes()); x++ {
		if len(got[x]) != 4 {
			t.Fatalf("node %d received %d blocks, want 4", x, len(got[x]))
		}
		for s, data := range got[x] {
			if (s^x)&^uint64(0b0101) != 0 {
				t.Fatalf("node %d got block from outside its subcube: %d", x, s)
			}
			checkBlock(t, data, s, x, size)
		}
	}
}

func TestExchangeRejectsBadDims(t *testing.T) {
	e := newEngine(t, 3, machine.Ideal(machine.OnePort))
	if _, err := AllToAllExchange(e, []int{0, 0}, SingleMessage,
		func(s, d uint64) []float64 { return nil }); err == nil {
		t.Error("duplicate dims accepted")
	}
	e2 := newEngine(t, 3, machine.Ideal(machine.OnePort))
	if _, err := AllToAllExchange(e2, []int{5}, SingleMessage,
		func(s, d uint64) []float64 { return nil }); err == nil {
		t.Error("out-of-range dim accepted")
	}
}

func TestAllToAllSBnTCorrectness(t *testing.T) {
	n, size := 4, 2
	e := newEngine(t, n, machine.Ideal(machine.NPort))
	got, err := AllToAllSBnT(e, func(s, d uint64) []float64 { return payload(s, d, size) })
	if err != nil {
		t.Fatal(err)
	}
	N := uint64(e.Nodes())
	for x := uint64(0); x < N; x++ {
		if len(got[x]) != int(N) {
			t.Fatalf("node %d received %d blocks", x, len(got[x]))
		}
		for s := uint64(0); s < N; s++ {
			checkBlock(t, got[x][s], s, x, size)
		}
	}
}

// With n-port communication, SBnT all-to-all should beat the one-message
// exchange algorithm on transfer-dominated workloads (Section 3.2: t_c term
// drops from n*K/2 to K/2).
func TestSBnTBeatsExchangeNPort(t *testing.T) {
	n, size := 6, 64
	ideal := machine.Ideal(machine.NPort)
	ideal.Tau = 0.001 // transfer-dominated

	e1 := newEngine(t, n, ideal)
	if _, err := AllToAllExchange(e1, DescendingDims(n), SingleMessage,
		func(s, d uint64) []float64 { return payload(s, d, size) }); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, n, ideal)
	if _, err := AllToAllSBnT(e2, func(s, d uint64) []float64 { return payload(s, d, size) }); err != nil {
		t.Fatal(err)
	}
	exT, sbT := e1.Stats().Time, e2.Stats().Time
	if sbT >= exT {
		t.Errorf("SBnT (%v) not faster than exchange (%v) with n-port", sbT, exT)
	}
	// The speedup should be on the order of n/2 or better than 2x at least.
	if exT/sbT < 2 {
		t.Errorf("SBnT speedup only %.2fx", exT/sbT)
	}
}

func TestOneToAllCorrectness(t *testing.T) {
	for _, kind := range []TreeKind{KindSBT, KindRotatedSBTs, KindSBnT} {
		for _, root := range []uint64{0, 5} {
			t.Run(fmt.Sprintf("%v/root=%d", kind, root), func(t *testing.T) {
				n, size := 4, 6
				e := newEngine(t, n, machine.Ideal(machine.NPort))
				got, err := OneToAll(e, kind, root, func(dst uint64) []float64 {
					return payload(root, dst, size)
				})
				if err != nil {
					t.Fatal(err)
				}
				for x := uint64(0); x < uint64(e.Nodes()); x++ {
					checkBlock(t, got[x], root, x, size)
				}
			})
		}
	}
}

// Section 3.1: with n-port communication, n rotated SBTs reduce the
// transfer time by ~n/2 over a single SBT.
func TestRotatedSBTsBeatSBT(t *testing.T) {
	n, size := 6, 64
	p := machine.Ideal(machine.NPort)
	p.Tau = 0.001

	e1 := newEngine(t, n, p)
	if _, err := OneToAll(e1, KindSBT, 0, func(dst uint64) []float64 {
		return payload(0, dst, size)
	}); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, n, p)
	if _, err := OneToAll(e2, KindRotatedSBTs, 0, func(dst uint64) []float64 {
		return payload(0, dst, size)
	}); err != nil {
		t.Fatal(err)
	}
	if e2.Stats().Time >= e1.Stats().Time {
		t.Errorf("rotated SBTs (%v) not faster than SBT (%v)",
			e2.Stats().Time, e1.Stats().Time)
	}
}

func TestAllToOneCorrectness(t *testing.T) {
	n, size := 4, 3
	e := newEngine(t, n, machine.Ideal(machine.OnePort))
	root := uint64(9)
	got, err := AllToOne(e, root, func(src uint64) []float64 {
		return payload(src, root, size)
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(0); s < uint64(e.Nodes()); s++ {
		checkBlock(t, got[s], s, root, size)
	}
}

func TestSomeToAllCorrectness(t *testing.T) {
	for _, splitFirst := range []bool{true, false} {
		t.Run(fmt.Sprintf("splitFirst=%v", splitFirst), func(t *testing.T) {
			n := 4
			splitDims := []int{3, 2}
			exchDims := []int{1, 0}
			size := 2
			e := newEngine(t, n, machine.Ideal(machine.OnePort))
			got, err := SomeToAll(e, splitDims, exchDims, SingleMessage, splitFirst,
				func(s, d uint64) []float64 { return payload(s, d, size) })
			if err != nil {
				t.Fatal(err)
			}
			// Sources: nodes 0..3 (zero high bits). Every node must hold
			// one block from the source sharing nothing (its subcube is
			// the whole cube here).
			for x := uint64(0); x < uint64(e.Nodes()); x++ {
				if len(got[x]) != 4 {
					t.Fatalf("node %d received %d blocks, want 4", x, len(got[x]))
				}
				for s, data := range got[x] {
					if s > 3 {
						t.Fatalf("node %d got block from non-source %d", x, s)
					}
					checkBlock(t, data, s, x, size)
				}
			}
		})
	}
}

func TestAllToSomeCorrectness(t *testing.T) {
	for _, exchangeFirst := range []bool{true, false} {
		t.Run(fmt.Sprintf("exchangeFirst=%v", exchangeFirst), func(t *testing.T) {
			n := 4
			splitDims := []int{3, 2}
			exchDims := []int{1, 0}
			size := 2
			e := newEngine(t, n, machine.Ideal(machine.OnePort))
			got, err := AllToSome(e, splitDims, exchDims, SingleMessage, exchangeFirst,
				func(s, d uint64) []float64 { return payload(s, d, size) })
			if err != nil {
				t.Fatal(err)
			}
			N := uint64(e.Nodes())
			for x := uint64(0); x < N; x++ {
				if x > 3 {
					if len(got[x]) != 0 {
						t.Fatalf("non-target %d holds %d blocks", x, len(got[x]))
					}
					continue
				}
				if len(got[x]) != int(N) {
					t.Fatalf("target %d received %d blocks, want %d", x, len(got[x]), N)
				}
				for s := uint64(0); s < N; s++ {
					checkBlock(t, got[x][s], s, x, size)
				}
			}
		})
	}
}

// Theorem 1: splitting first minimizes transfer for some-to-all; exchanging
// first minimizes it for all-to-some. Compare total bytes moved.
func TestTheorem1Ordering(t *testing.T) {
	n := 6
	splitDims := []int{5, 4, 3}
	exchDims := []int{2, 1, 0}
	size := 8
	block := func(s, d uint64) []float64 { return payload(s, d, size) }

	run := func(someToAll, optimal bool) simnet.Stats {
		e := newEngine(t, n, machine.Ideal(machine.OnePort))
		var err error
		if someToAll {
			_, err = SomeToAll(e, splitDims, exchDims, SingleMessage, optimal, block)
		} else {
			_, err = AllToSome(e, splitDims, exchDims, SingleMessage, optimal, block)
		}
		if err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}

	// Both orders move the same total volume; the optimal order wins on
	// elapsed time because the all-to-all then runs on split (smaller)
	// per-node data across 2^k concurrent subcubes.
	s2aOpt, s2aBad := run(true, true), run(true, false)
	if s2aOpt.Bytes != s2aBad.Bytes {
		t.Errorf("some-to-all orders moved different volumes: %d vs %d",
			s2aOpt.Bytes, s2aBad.Bytes)
	}
	if s2aOpt.Time >= s2aBad.Time {
		t.Errorf("some-to-all: split-first time %v not below exchange-first %v",
			s2aOpt.Time, s2aBad.Time)
	}
	a2sOpt, a2sBad := run(false, true), run(false, false)
	if a2sOpt.Time >= a2sBad.Time {
		t.Errorf("all-to-some: exchange-first time %v not below accumulate-first %v",
			a2sOpt.Time, a2sBad.Time)
	}
}

func TestSomeToAllRejectsOverlappingDims(t *testing.T) {
	e := newEngine(t, 3, machine.Ideal(machine.OnePort))
	if _, err := SomeToAll(e, []int{1}, []int{1, 0}, SingleMessage, true,
		func(s, d uint64) []float64 { return nil }); err == nil {
		t.Error("overlapping dim sets accepted")
	}
}

// SBnT all-to-all balances link load: with uniform blocks the heaviest
// directed link carries at most ~2x the average (the point of base()
// routing), while the exchange algorithm concentrates each step on one
// dimension.
func TestSBnTLinkBalance(t *testing.T) {
	n, size := 5, 4
	e := newEngine(t, n, machine.Ideal(machine.NPort))
	if _, err := AllToAllSBnT(e, func(s, d uint64) []float64 {
		return payload(s, d, size)
	}); err != nil {
		t.Fatal(err)
	}
	loads := e.LinkLoads()
	var total, max int64
	for _, l := range loads {
		total += l.Bytes
		if l.Bytes > max {
			max = l.Bytes
		}
	}
	if len(loads) != n*e.Nodes() { // every directed link used
		t.Errorf("only %d of %d directed links used", len(loads), n*e.Nodes())
	}
	avg := float64(total) / float64(len(loads))
	if float64(max) > 2.2*avg {
		t.Errorf("SBnT link imbalance: max %d vs avg %.1f", max, avg)
	}
}
