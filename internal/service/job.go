package service

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"boolcube/internal/core"
	"boolcube/internal/field"
	"boolcube/internal/matrix"
	"boolcube/internal/plan"
)

// JobSpec describes one transpose request: what to move (a distributed
// matrix and the target layout), how (the algorithm), and under which
// service contract (priority and deadline budget). The machine model and
// the fabric backend are service-wide — the service owns one ensemble; jobs
// share it.
type JobSpec struct {
	// Alg selects the transposition algorithm (plan.Auto resolves against
	// the service machine).
	Alg plan.Algorithm
	// Before and After are the source and destination layouts; both must
	// fit the service cube (NBits <= Config.Dims).
	Before, After field.Layout
	// Src is the input distribution, laid out under Before. It is read-only
	// for the service; tenants submitting the same *Dist pointer with the
	// same shape and algorithm are batched into one execution.
	Src *matrix.Dist
	// Priority orders round admission: higher runs earlier. Waiting jobs
	// age (Config.Aging per round skipped), so low priorities cannot starve.
	Priority int
	// Deadline, when positive, is the job's execution budget in µs on the
	// backend's clock (virtual time on simnet, wall time on livenet),
	// generalizing the engine-level SetDeadline to per-job budgets. A round
	// is bounded by the tightest budget among its jobs; when that abort
	// fires, the binding job fails with a resumable checkpoint while
	// co-scheduled jobs are automatically resumed in later rounds.
	Deadline float64
}

// ParseJob builds a JobSpec from the textual form the command-line tools
// and the fuzz harness use: algorithm, layout, priority and deadline
// strings, parameterized by the matrix shape 2^p x 2^q and the cube
// dimension n (see field.Parse for the layout grammar). The returned spec
// has no Src; callers scatter their matrix under the Before layout. Every
// malformed field is a typed *SpecError, never a panic.
func ParseJob(alg, before, after, priority, deadline string, p, q, n int) (JobSpec, error) {
	var spec JobSpec
	if p < 0 || q < 0 || n < 0 || p+q > 62 || n > 30 {
		return spec, &SpecError{Field: "shape", Value: fmt.Sprintf("p=%d q=%d n=%d", p, q, n)}
	}
	a, err := plan.ParseAlgorithm(strings.TrimSpace(alg))
	if err != nil {
		return spec, &SpecError{Field: "alg", Value: alg, Err: err}
	}
	spec.Alg = a
	if spec.Before, err = field.Parse(before, p, q, n); err != nil {
		return spec, &SpecError{Field: "before", Value: before, Err: err}
	}
	// The transposed matrix is 2^q x 2^p, so the after layout parses
	// against the swapped shape.
	if spec.After, err = field.Parse(after, q, p, n); err != nil {
		return spec, &SpecError{Field: "after", Value: after, Err: err}
	}
	if priority != "" {
		if spec.Priority, err = strconv.Atoi(strings.TrimSpace(priority)); err != nil {
			return spec, &SpecError{Field: "priority", Value: priority, Err: err}
		}
	}
	if deadline != "" {
		d, err := strconv.ParseFloat(strings.TrimSpace(deadline), 64)
		if err != nil {
			return spec, &SpecError{Field: "deadline", Value: deadline, Err: err}
		}
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return spec, &SpecError{Field: "deadline", Value: deadline}
		}
		spec.Deadline = d
	}
	return spec, nil
}

// Job is the handle Submit returns: a future for one admitted request.
// Wait blocks until the service finishes (or fails) the job; Cancel
// withdraws it while it is still queued.
type Job struct {
	spec JobSpec
	plan *plan.Plan
	seq  int64
	// waited counts the rounds formed while this job sat in the queue; the
	// scheduler adds Config.Aging per round to the job's effective
	// priority, which is what bounds every admitted job's wait.
	waited    int
	submitted time.Time
	svc       *Service

	done chan struct{}
	res  *core.Result
	err  error
	lat  float64 // submit-to-finish latency, wall µs
}

// Wait blocks until the job finishes and returns its result. On failure
// the error is typed: a *core.ExecError carries the job's checkpoint
// (hand it to core.Resume to finish the transpose on a private engine),
// ErrCanceled reports a successful Cancel.
func (j *Job) Wait() (*core.Result, error) {
	<-j.done
	return j.res, j.err
}

// Done returns a channel closed when the job has finished (or was
// canceled); Wait and Err are safe to call after it closes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel withdraws the job if it is still queued, failing it with
// ErrCanceled, and reports whether it did. A job already formed into a
// round is past canceling — Cancel returns false and the job completes
// normally.
func (j *Job) Cancel() bool {
	s := j.svc
	s.mu.Lock()
	for i, q := range s.pending {
		if q == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			s.metrics.Canceled++
			s.mu.Unlock()
			j.finish(nil, ErrCanceled)
			return true
		}
	}
	s.mu.Unlock()
	return false
}

// Latency returns the job's submit-to-finish wall latency in µs; it is
// meaningful only after Done.
func (j *Job) Latency() float64 { return j.lat }

// Priority returns the job's submitted priority.
func (j *Job) Priority() int { return j.spec.Priority }

// finish publishes the job's outcome exactly once. It must be called from
// the scheduler goroutine (or, for cancellation, after the job has been
// unlinked from the queue under the service lock).
func (j *Job) finish(res *core.Result, err error) {
	j.lat = float64(time.Since(j.submitted)) / float64(time.Microsecond) //cubevet:ignore detbreak -- service latency metric is wall-clock by design; results stay deterministic
	j.res, j.err = res, err
	close(j.done)
}
