package core

import (
	"errors"
	"fmt"

	"boolcube/internal/fabric"
	"boolcube/internal/fault"
	"boolcube/internal/plan"
	"boolcube/internal/router"
)

// FailoverPolicy selects how a flow-based execution responds to routes
// blocked by permanently-failed links. (Exchange-based algorithms have a
// fixed dimension schedule with no alternative routes, so they always
// surface a blocked link as a typed error regardless of policy.)
type FailoverPolicy int

const (
	// FailoverReroute (the default) moves each blocked flow onto the first
	// unused cube.DisjointPaths alternative before injection, recording the
	// degradation in Stats (Rerouted, ExtraHops). A flow with no usable
	// alternative fails the run with a typed *router.RouteError.
	FailoverReroute FailoverPolicy = iota
	// FailoverNone injects without rerouting: the first transmission to
	// exhaust its retry budget on a failed link aborts the run with a
	// typed, deterministic *fabric.FaultError.
	FailoverNone
	// FailoverAbandon reroutes like FailoverReroute, but a flow with no
	// usable alternative is dropped from the run (its destination block
	// stays zero) and counted in Stats.Abandoned instead of failing.
	FailoverAbandon
)

func (p FailoverPolicy) String() string {
	switch p {
	case FailoverReroute:
		return "reroute"
	case FailoverNone:
		return "none"
	case FailoverAbandon:
		return "abandon"
	}
	return fmt.Sprintf("failover(%d)", int(p))
}

// ExecOptions carries the per-run (as opposed to per-plan) knobs of an
// execution: the tracer, and the fault scenario with its failover and retry
// policies. The zero value is a plain fault-free run.
type ExecOptions struct {
	// Tracer, when non-nil, receives every timed operation of the run.
	Tracer fabric.Tracer
	// Faults, when non-nil, is the compiled fault schedule to inject. It
	// must have been compiled for the plan's cube dimension.
	Faults *fault.Plan
	// Failover selects the response to routes blocked by permanent link
	// failures; the zero value is FailoverReroute.
	Failover FailoverPolicy
	// Retry bounds the engine's per-transmission retry/backoff loop; zero
	// fields take the simnet defaults (3 attempts, backoff τ).
	Retry fabric.RetryPolicy
	// Deadline, when positive, aborts the run before any operation would
	// start past this virtual time (µs). The abort is clean and typed
	// (fabric.ErrDeadline) and — like every mid-run failure — carries a
	// Checkpoint, so a deadline-hit run can be resumed.
	Deadline float64
	// Backend names the fabric backend the plan executes on; empty selects
	// fabric.DefaultBackend (the deterministic simulation). Plans are
	// backend-neutral — the same compiled plan replays on any registered
	// backend.
	Backend string
}

// checkFaults validates the fault plan against the plan's cube.
func (xo ExecOptions) checkFaults(p *plan.Plan) error {
	if xo.Faults != nil && xo.Faults.Dims() != p.NDims() {
		return fmt.Errorf("core: fault plan compiled for a %d-cube, plan executes on a %d-cube",
			xo.Faults.Dims(), p.NDims())
	}
	return nil
}

// checkFeasible is the pre-flight feasibility check: when the fault schedule
// permanently severs every path the plan needs, the run is refused with a
// typed *InfeasibleError before any traffic moves, instead of burning the
// doomed run and failing mid-flight. Exchange plans have a fixed dimension
// schedule with no alternative routes, so any permanently-down link on an
// exchange dimension is fatal (every node transmits on every dimension).
// Flow plans are checked route by route, but only with failover disabled —
// the reroute policies do their own feasibility analysis against the
// disjoint-path alternatives. Mixed-program plans exchange along fixed
// dimensions too, but their per-node case table makes static link usage
// address-dependent, so they keep the runtime diagnosis.
func (xo ExecOptions) checkFeasible(p *plan.Plan) error {
	if xo.Faults == nil {
		return nil
	}
	switch p.Kind() {
	case plan.KindExchange:
		for _, l := range xo.Faults.DownLinks() {
			if !xo.Faults.PermanentlyDown(l.From, l.Dim) {
				continue
			}
			for _, d := range p.Dims() {
				if d == l.Dim {
					return &InfeasibleError{
						Plan:   p.Describe(),
						Detail: fmt.Sprintf("%v permanently down severs exchange dimension %d", l, d),
					}
				}
			}
		}
	case plan.KindFlow:
		if xo.Failover != FailoverNone {
			return nil
		}
		pf := p.Flows()
		flows := make([]router.Flow, len(pf))
		for i, f := range pf {
			flows[i] = router.Flow{Src: f.Src, Dst: f.Dst, Dims: f.Dims}
		}
		if err := router.CheckRoutes(flows, xo.Faults.PermanentlyDown); err != nil {
			var re *router.RouteError
			if errors.As(err, &re) {
				return &InfeasibleError{
					Plan: p.Describe(),
					Detail: fmt.Sprintf("flow %d (%d -> %d) crosses a permanently down link with failover disabled",
						re.Flow, re.Src, re.Dst),
					Cause: re,
				}
			}
			return err
		}
	}
	return nil
}
