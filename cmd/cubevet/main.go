// Cubevet is this repository's static analyzer: it enforces the invariants
// the compiler cannot see (the simnet concurrency contract, address-width
// shift bounds, the library error contract, the engine's determinism
// guarantee, and the pooled-buffer / send-ownership / checkpoint-recovery
// contracts). See internal/analysis for the passes and
// internal/analysis/flow for the shared dataflow core.
//
// Usage:
//
//	cubevet [-passes p1,p2] [-warn p3,p4] [-json] [-list] [packages | ./...]
//
// Packages are directories, or "./..." (the default) for every package in
// the module. Findings print as "file:line: [pass] message" (or as a JSON
// array with -json). The exit status is 1 when there are error-severity
// findings, 2 on usage errors, load errors or type-check failures, and 0
// when clean; -warn demotes the named passes to warnings, which are
// reported but do not gate. Suppress a finding with a
// "//cubevet:ignore <pass> -- reason" comment on the same line or the line
// above it (the reason is mandatory: the ignorereason pass audits bare
// directives).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"boolcube/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Pass     string `json:"pass"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cubevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	passSpec := fs.String("passes", "all", "comma-separated passes to run: "+strings.Join(analysis.PassNames(), ","))
	warnSpec := fs.String("warn", "", "comma-separated passes demoted to warnings (reported, exit stays 0)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list available passes and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cubevet [-passes p1,p2] [-warn p1,p2] [-json] [-list] [packages | ./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, p := range analysis.Passes() {
			fmt.Fprintf(stdout, "%-12s %s\n", p.Name, p.Doc)
		}
		return 0
	}
	passes, err := analysis.SelectPasses(*passSpec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *warnSpec != "" {
		warned, err := analysis.SelectPasses(*warnSpec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		demoted := map[string]bool{}
		for _, p := range warned {
			demoted[p.Name] = true
		}
		for i := range passes {
			if demoted[passes[i].Name] {
				passes[i].Severity = analysis.SeverityWarn
			}
		}
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var pkgs []*analysis.Package
	for _, t := range targets {
		if t == "./..." || t == "..." {
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			pkgs = append(pkgs, all...)
			continue
		}
		pkg, err := loader.LoadDir(strings.TrimSuffix(t, "/"))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	// Type-check failures are a hard stop (exit 2, distinct from findings):
	// passes degrade to syntactic fallbacks without type information, and a
	// silently weakened gate is worse than a loud one.
	typeErrs := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			if typeErrs < 20 {
				fmt.Fprintf(stderr, "cubevet: %s: %v\n", pkg.Path, e)
			}
			typeErrs++
		}
	}
	if typeErrs > 0 {
		fmt.Fprintf(stderr, "cubevet: %d type-check error(s); refusing to analyze\n", typeErrs)
		return 2
	}

	// Loading is sequential (the loader's cache and fset are shared), but
	// each package's passes are independent once the module view exists —
	// fan the analysis out across the CPUs.
	mod := analysis.NewModule(pkgs)
	perPkg := make([][]analysis.Finding, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *analysis.Package) {
			defer wg.Done()
			defer func() { <-sem }()
			perPkg[i] = analysis.Analyze(mod, pkg, passes)
		}(i, pkg)
	}
	wg.Wait()

	var all []analysis.Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	errors := 0
	for i := range all {
		all[i].Pos.Filename = relPath(cwd, all[i].Pos.Filename)
		if all[i].Severity != analysis.SeverityWarn {
			errors++
		}
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(all))
		for _, f := range all {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Pass: f.Pass, Severity: string(f.Severity), Message: f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range all {
			if f.Severity == analysis.SeverityWarn {
				fmt.Fprintf(stdout, "%s:%d: [%s] warning: %s\n", f.Pos.Filename, f.Pos.Line, f.Pass, f.Message)
			} else {
				fmt.Fprintln(stdout, f)
			}
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "cubevet: %d finding(s), %d gating\n", len(all), errors)
	}
	if errors > 0 {
		return 1
	}
	return 0
}

// relPath shortens an absolute finding path relative to the working
// directory when possible.
func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil {
		return rel
	}
	return path
}
