package comm

import (
	"math/rand"
	"testing"

	"boolcube/internal/machine"
	"boolcube/internal/simnet"
)

// Property: the exchange all-to-all delivers every block intact for random
// cube sizes, dimension orders, strategies and (heterogeneous) block sizes.
func TestExchangeAllToAllRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		dims := rng.Perm(n)
		strat := Strategy(rng.Intn(4))
		ports := machine.OnePort
		if rng.Intn(2) == 1 {
			ports = machine.NPort
		}
		e, err := simnet.New(n, machine.Ideal(ports))
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic pseudo-random per-pair size, including 0. Must be a
		// pure function: block() is called concurrently from node program
		// prologues.
		sizeOf := func(s, d uint64) int {
			return int((s*2654435761 + d*40503 + uint64(trial)) % 7)
		}
		block := func(s, d uint64) []float64 {
			return payload(s, d, sizeOf(s, d))
		}
		got, err := AllToAllExchange(e, dims, strat, block)
		if err != nil {
			t.Fatalf("trial %d (n=%d dims=%v strat=%v): %v", trial, n, dims, strat, err)
		}
		N := uint64(e.Nodes())
		for x := uint64(0); x < N; x++ {
			for s := uint64(0); s < N; s++ {
				data, ok := got[x][s]
				if !ok {
					t.Fatalf("trial %d: node %d missing block from %d", trial, x, s)
				}
				checkBlock(t, data, s, x, sizeOf(s, x))
			}
		}
	}
}

// Property: some-to-all delivers intact blocks for random split/exchange
// dimension partitions and both phase orders.
func TestSomeToAllRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		perm := rng.Perm(n)
		k := 1 + rng.Intn(n-1)
		splitDims := perm[:k]
		exchDims := perm[k:]
		splitFirst := rng.Intn(2) == 0
		e, err := simnet.New(n, machine.Ideal(machine.OnePort))
		if err != nil {
			t.Fatal(err)
		}
		size := 1 + rng.Intn(3)
		got, err := SomeToAll(e, splitDims, exchDims, SingleMessage, splitFirst,
			func(s, d uint64) []float64 { return payload(s, d, size) })
		if err != nil {
			t.Fatalf("trial %d (n=%d split=%v exch=%v): %v", trial, n, splitDims, exchDims, err)
		}
		// Each node receives exactly 2^(n-k) blocks (one per source in its
		// subcube), each intact.
		want := 1 << uint(n-k)
		for x := uint64(0); x < uint64(e.Nodes()); x++ {
			if len(got[x]) != want {
				t.Fatalf("trial %d: node %d received %d blocks, want %d", trial, x, len(got[x]), want)
			}
			for s, data := range got[x] {
				checkBlock(t, data, s, x, size)
			}
		}
	}
}

// Property: scatter over any tree kind and root delivers every payload.
func TestOneToAllRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(5)
		kind := TreeKind(rng.Intn(3))
		root := uint64(rng.Intn(1 << uint(n)))
		size := 1 + rng.Intn(5)
		e, err := simnet.New(n, machine.Ideal(machine.NPort))
		if err != nil {
			t.Fatal(err)
		}
		got, err := OneToAll(e, kind, root, func(dst uint64) []float64 {
			return payload(root, dst, size)
		})
		if err != nil {
			t.Fatalf("trial %d (n=%d kind=%v root=%d): %v", trial, n, kind, root, err)
		}
		for x := uint64(0); x < uint64(e.Nodes()); x++ {
			checkBlock(t, got[x], root, x, size)
		}
	}
}
