package comm

import (
	"fmt"
	"sort"

	"boolcube/internal/cube"
	"boolcube/internal/simnet"
)

// This file implements one-to-all and all-to-one personalized communication
// (Section 3.1) by scatter/gather over spanning trees: a plain SBT (one-port
// optimal within 2x), n rotated SBTs, or a spanning balanced n-tree, all
// with "all data for a subtree at once" scheduling.

// nextHop returns the child of x on the tree path toward dst (x must be an
// ancestor of dst; dst != x).
func nextHop(t *cube.Tree, x, dst uint64) uint64 {
	cur := dst
	for {
		p := t.Parent[cur]
		if p < 0 {
			panic(fmt.Sprintf("comm: %d is not an ancestor of %d", x, dst))
		}
		if uint64(p) == x {
			return cur
		}
		cur = uint64(p)
	}
}

// ScatterOnNode executes the node's role in a one-to-all personalized
// communication from root over the given spanning trees. parts(dst, k)
// supplies the fraction of dst's data routed over trees[k]; only the root's
// calls are used. Returns this node's received data, concatenated in tree
// order (k ascending).
//
// With one tree (an SBT) this is the paper's one-port algorithm with
// T_min = (1-1/N)PQ·t_c + nτ; with n rotated SBTs (or an SBnT) and n-port
// communication the transfer term drops by a factor of n (Section 3.1).
func ScatterOnNode(nd *simnet.Node, root uint64, trees []*cube.Tree, parts func(dst uint64, k int) []float64) []float64 {
	id := nd.ID()
	var own []float64
	ownByTree := make([][]float64, len(trees))

	if id == root {
		for k, t := range trees {
			ownByTree[k] = parts(root, k)
			// One message per root subtree, largest subtree first so the
			// longest chain starts draining earliest.
			children := append([]uint64(nil), t.Children[root]...)
			sort.Slice(children, func(a, b int) bool {
				sa, sb := t.SubtreeSize(children[a]), t.SubtreeSize(children[b])
				if sa != sb {
					return sa > sb
				}
				return children[a] < children[b]
			})
			for _, c := range children {
				m := buildSubtreeMsg(t, c, k, parts)
				nd.Send(dimOf(root, c), m)
			}
		}
	} else {
		// Every non-root node receives exactly one message per tree.
		for range trees {
			m := nd.RecvAny()
			k := m.Tag
			t := trees[k]
			// Split the payload: keep own part, forward the rest grouped
			// by child subtree.
			type group struct {
				child uint64
				msg   simnet.Msg
			}
			groups := make(map[uint64]*group)
			var order []uint64
			off := 0
			for _, p := range m.Parts {
				data := m.Data[off : off+p.N]
				off += p.N
				if p.Dst == id {
					ownByTree[k] = data
					continue
				}
				c := nextHop(t, id, p.Dst)
				g, ok := groups[c]
				if !ok {
					g = &group{child: c}
					groups[c] = g
					order = append(order, c)
				}
				g.msg.Parts = append(g.msg.Parts, p)
				g.msg.Data = append(g.msg.Data, data...)
			}
			// Forward larger subtrees first, as at the root.
			sort.Slice(order, func(a, b int) bool {
				sa, sb := t.SubtreeSize(order[a]), t.SubtreeSize(order[b])
				if sa != sb {
					return sa > sb
				}
				return order[a] < order[b]
			})
			for _, c := range order {
				g := groups[c]
				g.msg.Tag = k
				nd.Send(dimOf(id, c), g.msg)
			}
		}
	}
	for _, d := range ownByTree {
		own = append(own, d...)
	}
	return own
}

func buildSubtreeMsg(t *cube.Tree, subroot uint64, k int, parts func(dst uint64, k int) []float64) simnet.Msg {
	m := simnet.Msg{Tag: k}
	var walk func(x uint64)
	walk = func(x uint64) {
		d := parts(x, k)
		m.Parts = append(m.Parts, simnet.Part{Src: t.Root, Dst: x, N: len(d)})
		m.Data = append(m.Data, d...)
		for _, c := range t.Children[x] {
			walk(c)
		}
	}
	walk(subroot)
	return m
}

func dimOf(a, b uint64) int {
	d := a ^ b
	dim := 0
	for d > 1 {
		d >>= 1
		dim++
	}
	return dim
}

// GatherOnNode executes the node's role in an all-to-one personalized
// communication toward root over one spanning tree: leaves send up, inner
// nodes accumulate their subtree before forwarding. Returns, at the root
// only, the gathered blocks sorted by source; other nodes return nil.
func GatherOnNode(nd *simnet.Node, t *cube.Tree, data []float64) []Block {
	id := nd.ID()
	acc := []Block{{Src: id, Dst: t.Root, Data: data}}
	for range t.Children[id] {
		m := nd.RecvAny()
		off := 0
		for _, p := range m.Parts {
			acc = append(acc, Block{Src: p.Src, Dst: p.Dst, Data: m.Data[off : off+p.N]})
			off += p.N
		}
	}
	if id == t.Root {
		sort.Slice(acc, func(a, b int) bool { return acc[a].Src < acc[b].Src })
		return acc
	}
	var m simnet.Msg
	for _, b := range acc {
		m.Parts = append(m.Parts, simnet.Part{Src: b.Src, Dst: b.Dst, N: len(b.Data)})
		m.Data = append(m.Data, b.Data...)
	}
	p := uint64(t.Parent[id])
	nd.Send(dimOf(id, p), m)
	return nil
}

// TreeKind selects the spanning tree family for scatter wrappers.
type TreeKind int

const (
	// KindSBT routes everything over one spanning binomial tree.
	KindSBT TreeKind = iota
	// KindRotatedSBTs splits each destination's data over n rotated SBTs.
	KindRotatedSBTs
	// KindSBnT routes over the spanning balanced n-tree.
	KindSBnT
)

func (k TreeKind) String() string {
	switch k {
	case KindSBT:
		return "sbt"
	case KindRotatedSBTs:
		return "rotated-sbts"
	default:
		return "sbnt"
	}
}

// BuildTrees constructs the spanning tree set of the given kind rooted at
// root on an n-cube.
func BuildTrees(kind TreeKind, n int, root uint64) []*cube.Tree {
	c := cube.New(n)
	switch kind {
	case KindSBT:
		return []*cube.Tree{cube.SBT(c, root)}
	case KindRotatedSBTs:
		ts := make([]*cube.Tree, n)
		for k := 0; k < n; k++ {
			ts[k] = cube.RotatedSBT(c, root, k)
		}
		return ts
	default:
		return []*cube.Tree{cube.SBnT(c, root)}
	}
}

// OneToAll scatters data(dst) from root to every node using the given tree
// family. result[x] is the payload x received (its own data for x == root).
func OneToAll(e *simnet.Engine, kind TreeKind, root uint64, data func(dst uint64) []float64) ([][]float64, error) {
	if root >= uint64(e.Nodes()) {
		return nil, fmt.Errorf("comm: root %d out of range", root)
	}
	trees := BuildTrees(kind, e.Dims(), root)
	parts := func(dst uint64, k int) []float64 {
		return chunkOf(data(dst), len(trees), k)
	}
	result := make([][]float64, e.Nodes())
	err := e.Run(func(nd *simnet.Node) {
		result[nd.ID()] = ScatterOnNode(nd, root, trees, parts)
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// AllToOne gathers data(src) from every node at root over an SBT. The
// result is indexed by source.
func AllToOne(e *simnet.Engine, root uint64, data func(src uint64) []float64) ([][]float64, error) {
	if root >= uint64(e.Nodes()) {
		return nil, fmt.Errorf("comm: root %d out of range", root)
	}
	tree := cube.SBT(cube.New(e.Dims()), root)
	result := make([][]float64, e.Nodes())
	err := e.Run(func(nd *simnet.Node) {
		blocks := GatherOnNode(nd, tree, data(nd.ID()))
		if nd.ID() == root {
			for _, b := range blocks {
				result[b.Src] = b.Data
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// chunkOf splits data into parts nearly-equal chunks and returns chunk k.
func chunkOf(data []float64, parts, k int) []float64 {
	base := len(data) / parts
	rem := len(data) % parts
	off := 0
	for i := 0; i < k; i++ {
		sz := base
		if i < rem {
			sz++
		}
		off += sz
	}
	sz := base
	if k < rem {
		sz++
	}
	return data[off : off+sz]
}
