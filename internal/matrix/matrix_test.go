package matrix

import (
	"strings"
	"testing"

	"boolcube/internal/field"
)

func TestNewIotaAt(t *testing.T) {
	m := NewIota(2, 3)
	if m.Rows() != 4 || m.Cols() != 8 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 0 || m.At(1, 0) != 8 || m.At(3, 7) != 31 {
		t.Errorf("iota values wrong: %v %v %v", m.At(0, 0), m.At(1, 0), m.At(3, 7))
	}
}

func TestTransposed(t *testing.T) {
	m := NewIota(2, 3)
	tr := m.Transposed()
	if tr.Rows() != 8 || tr.Cols() != 4 {
		t.Fatalf("transposed shape %dx%d", tr.Rows(), tr.Cols())
	}
	for u := uint64(0); u < 4; u++ {
		for v := uint64(0); v < 8; v++ {
			if tr.At(v, u) != m.At(u, v) {
				t.Fatalf("tr(%d,%d) != m(%d,%d)", v, u, u, v)
			}
		}
	}
	// Transposing twice is the identity.
	if !tr.Transposed().Equal(m) {
		t.Error("double transpose is not identity")
	}
}

func TestEqual(t *testing.T) {
	a, b := NewIota(2, 2), NewIota(2, 2)
	if !a.Equal(b) {
		t.Error("equal matrices reported unequal")
	}
	b.Set(1, 1, -1)
	if a.Equal(b) {
		t.Error("unequal matrices reported equal")
	}
	if a.Equal(NewIota(2, 3)) {
		t.Error("different shapes reported equal")
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	m := NewIota(4, 4)
	layouts := []field.Layout{
		field.OneDimConsecutiveRows(4, 4, 2, field.Binary),
		field.OneDimCyclicCols(4, 4, 3, field.Gray),
		field.TwoDimConsecutive(4, 4, 2, 2, field.Binary),
		field.TwoDimCyclic(4, 4, 2, 2, field.Gray),
		field.TwoDimMixed(4, 4, 1, 2, field.Binary),
	}
	for _, l := range layouts {
		d := Scatter(m, l)
		if err := d.Verify(m); err != nil {
			t.Errorf("%s: scatter not verified: %v", l, err)
		}
		if !d.Gather().Equal(m) {
			t.Errorf("%s: gather != original", l)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	m := NewIota(3, 3)
	l := field.TwoDimConsecutive(3, 3, 1, 1, field.Binary)
	d := Scatter(m, l)
	d.Local[2][5] = -42
	err := d.Verify(m)
	if err == nil || !strings.Contains(err.Error(), "proc 2 slot 5") {
		t.Errorf("corruption not located: %v", err)
	}
}

func TestVerifyDetectsShapeMismatch(t *testing.T) {
	m := NewIota(3, 3)
	l := field.OneDimCyclicCols(3, 3, 2, field.Binary)
	d := Scatter(m, l)
	if err := d.Verify(NewIota(3, 2)); err == nil {
		t.Error("shape mismatch not detected")
	}
}

func TestScatterPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scatter with wrong layout shape did not panic")
		}
	}()
	Scatter(NewIota(3, 3), field.OneDimCyclicCols(2, 2, 1, field.Binary))
}

func TestLocalShape(t *testing.T) {
	m := NewIota(4, 3)
	// Row partitioning: contiguous row blocks.
	d := Scatter(m, field.OneDimConsecutiveRows(4, 3, 2, field.Binary))
	rows, cols, ok := d.LocalShape()
	if !ok || rows != 4 || cols != 8 {
		t.Fatalf("LocalShape = (%d,%d,%v), want (4,8,true)", rows, cols, ok)
	}
	// Every local row must be a contiguous matrix row.
	for proc := 0; proc < 4; proc++ {
		for r := 0; r < rows; r++ {
			row := d.LocalRow(proc, r)
			u := d.RowIndex(proc, r)
			for v := 0; v < cols; v++ {
				if row[v] != m.At(u, uint64(v)) {
					t.Fatalf("proc %d local row %d: element %d wrong", proc, r, v)
				}
			}
		}
	}
	// Cyclic rows also store full rows.
	d = Scatter(m, field.OneDimCyclicRows(4, 3, 2, field.Binary))
	if _, _, ok := d.LocalShape(); !ok {
		t.Error("cyclic rows should have a row-block local shape")
	}
	// Column partitioning does not.
	d = Scatter(m, field.OneDimConsecutiveCols(4, 3, 2, field.Binary))
	if _, _, ok := d.LocalShape(); ok {
		t.Error("column partitioning wrongly reported row blocks")
	}
	// Two-dimensional partitioning does not.
	d = Scatter(m, field.TwoDimConsecutive(4, 3, 1, 1, field.Binary))
	if _, _, ok := d.LocalShape(); ok {
		t.Error("2-D partitioning wrongly reported row blocks")
	}
}

func TestLocalRowPanicsOnBadLayout(t *testing.T) {
	d := Scatter(NewIota(3, 3), field.OneDimConsecutiveCols(3, 3, 2, field.Binary))
	defer func() {
		if recover() == nil {
			t.Error("LocalRow on a column layout did not panic")
		}
	}()
	d.LocalRow(0, 0)
}
