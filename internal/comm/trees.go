package comm

import (
	"fmt"
	"slices"

	"boolcube/internal/cube"
	"boolcube/internal/fabric"
)

// This file implements one-to-all and all-to-one personalized communication
// (Section 3.1) by scatter/gather over spanning trees: a plain SBT (one-port
// optimal within 2x), n rotated SBTs, or a spanning balanced n-tree, all
// with "all data for a subtree at once" scheduling.

// nextHop returns the child of x on the tree path toward dst (x must be an
// ancestor of dst; dst != x).
func nextHop(t *cube.Tree, x, dst uint64) uint64 {
	cur := dst
	for {
		p := t.Parent[cur]
		if p < 0 {
			panic(fmt.Sprintf("comm: %d is not an ancestor of %d", x, dst))
		}
		if uint64(p) == x {
			return cur
		}
		cur = uint64(p)
	}
}

// ScatterOnNode executes the node's role in a one-to-all personalized
// communication from root over the given spanning trees. parts(dst, k)
// supplies the fraction of dst's data routed over trees[k]; only the root's
// calls are used. Returns this node's received data, concatenated in tree
// order (k ascending).
//
// With one tree (an SBT) this is the paper's one-port algorithm with
// T_min = (1-1/N)PQ·t_c + nτ; with n rotated SBTs (or an SBnT) and n-port
// communication the transfer term drops by a factor of n (Section 3.1).
func ScatterOnNode(nd fabric.Node, root uint64, trees []*cube.Tree, parts func(dst uint64, k int) []float64) []float64 {
	id := nd.ID()
	var own []float64
	ownByTree := make([][]float64, len(trees))

	if id == root {
		for k, t := range trees {
			ownByTree[k] = parts(root, k)
			// One message per root subtree, largest subtree first so the
			// longest chain starts draining earliest.
			children := append([]uint64(nil), t.Children[root]...)
			slices.SortFunc(children, func(a, b uint64) int {
				if sa, sb := t.SubtreeSize(a), t.SubtreeSize(b); sa != sb {
					return sb - sa
				}
				if a < b {
					return -1
				}
				return 1
			})
			for _, c := range children {
				m := buildSubtreeMsg(t, c, k, parts)
				nd.Send(dimOf(root, c), m)
			}
		}
	} else {
		// Every non-root node receives exactly one message per tree.
		type group struct {
			child  uint64
			nb, ne int
			msg    fabric.Msg
			po, do int
		}
		var groups []*group // at most one per cube dimension
		for range trees {
			m := nd.RecvAny()
			k := m.Tag
			t := trees[k]
			// Split the payload: keep own part, forward the rest grouped by
			// child subtree. First pass sizes each child's message so its
			// buffers come from the pool at exact size; second pass fills.
			groups = groups[:0]
			findGroup := func(c uint64) *group {
				for _, g := range groups {
					if g.child == c {
						return g
					}
				}
				g := &group{child: c}
				groups = append(groups, g)
				return g
			}
			childOf := make([]uint64, len(m.Parts))
			for i, p := range m.Parts {
				if p.Dst == id {
					continue
				}
				c := nextHop(t, id, p.Dst)
				childOf[i] = c
				g := findGroup(c)
				g.nb++
				g.ne += p.N
			}
			for _, g := range groups {
				g.msg = fabric.Msg{Tag: k, Parts: nd.AllocParts(g.nb), Data: nd.AllocData(g.ne)}
			}
			off := 0
			for i, p := range m.Parts {
				data := m.Data[off : off+p.N]
				off += p.N
				if p.Dst == id {
					// Copy the own chunk out so the received buffer can be
					// recycled once the forwards below have drained it.
					ownByTree[k] = append([]float64(nil), data...)
					continue
				}
				g := findGroup(childOf[i])
				g.msg.Parts[g.po] = p
				g.po++
				g.do += copy(g.msg.Data[g.do:], data)
			}
			// Forward larger subtrees first, as at the root.
			slices.SortFunc(groups, func(a, b *group) int {
				if sa, sb := t.SubtreeSize(a.child), t.SubtreeSize(b.child); sa != sb {
					return sb - sa
				}
				if a.child < b.child {
					return -1
				}
				return 1
			})
			for _, g := range groups {
				nd.Send(dimOf(id, g.child), g.msg)
			}
			nd.Recycle(m)
		}
	}
	for _, d := range ownByTree {
		own = append(own, d...)
	}
	return own
}

func buildSubtreeMsg(t *cube.Tree, subroot uint64, k int, parts func(dst uint64, k int) []float64) fabric.Msg {
	m := fabric.Msg{Tag: k}
	var walk func(x uint64)
	walk = func(x uint64) {
		d := parts(x, k)
		m.Parts = append(m.Parts, fabric.Part{Src: t.Root, Dst: x, N: len(d)})
		m.Data = append(m.Data, d...)
		for _, c := range t.Children[x] {
			walk(c)
		}
	}
	walk(subroot)
	return m
}

func dimOf(a, b uint64) int {
	d := a ^ b
	dim := 0
	for d > 1 {
		d >>= 1
		dim++
	}
	return dim
}

// GatherOnNode executes the node's role in an all-to-one personalized
// communication toward root over one spanning tree: leaves send up, inner
// nodes accumulate their subtree before forwarding. Returns, at the root
// only, the gathered blocks sorted by source; other nodes return nil.
func GatherOnNode(nd fabric.Node, t *cube.Tree, data []float64) []Block {
	id := nd.ID()
	acc := make([]Block, 1, t.SubtreeSize(id))
	acc[0] = Block{Src: id, Dst: t.Root, Data: data}
	rxDatas := make([][]float64, 0, len(t.Children[id]))
	for range t.Children[id] {
		m := nd.RecvAny()
		off := 0
		for _, p := range m.Parts {
			acc = append(acc, Block{Src: p.Src, Dst: p.Dst, Data: m.Data[off : off+p.N : off+p.N]})
			off += p.N
		}
		rxDatas = append(rxDatas, m.Data)
		nd.Recycle(fabric.Msg{Parts: m.Parts})
	}
	if id == t.Root {
		slices.SortFunc(acc, func(a, b Block) int {
			if a.Src < b.Src {
				return -1
			}
			if a.Src > b.Src {
				return 1
			}
			return 0
		})
		return acc
	}
	ne := 0
	for _, b := range acc {
		ne += len(b.Data)
	}
	m := fabric.Msg{Parts: nd.AllocParts(len(acc)), Data: nd.AllocData(ne)}
	do := 0
	for i, b := range acc {
		m.Parts[i] = fabric.Part{Src: b.Src, Dst: b.Dst, N: len(b.Data)}
		do += copy(m.Data[do:], b.Data)
	}
	// Everything received has been copied into the upward message; the
	// receive buffers can go back to the pool.
	for _, d := range rxDatas {
		nd.Recycle(fabric.Msg{Data: d})
	}
	p := uint64(t.Parent[id])
	nd.Send(dimOf(id, p), m)
	return nil
}

// TreeKind selects the spanning tree family for scatter wrappers.
type TreeKind int

const (
	// KindSBT routes everything over one spanning binomial tree.
	KindSBT TreeKind = iota
	// KindRotatedSBTs splits each destination's data over n rotated SBTs.
	KindRotatedSBTs
	// KindSBnT routes over the spanning balanced n-tree.
	KindSBnT
)

func (k TreeKind) String() string {
	switch k {
	case KindSBT:
		return "sbt"
	case KindRotatedSBTs:
		return "rotated-sbts"
	default:
		return "sbnt"
	}
}

// BuildTrees constructs the spanning tree set of the given kind rooted at
// root on an n-cube.
func BuildTrees(kind TreeKind, n int, root uint64) []*cube.Tree {
	c := cube.New(n)
	switch kind {
	case KindSBT:
		return []*cube.Tree{cube.SBT(c, root)}
	case KindRotatedSBTs:
		ts := make([]*cube.Tree, n)
		for k := 0; k < n; k++ {
			ts[k] = cube.RotatedSBT(c, root, k)
		}
		return ts
	default:
		return []*cube.Tree{cube.SBnT(c, root)}
	}
}

// OneToAll scatters data(dst) from root to every node using the given tree
// family. result[x] is the payload x received (its own data for x == root).
func OneToAll(e fabric.Fabric, kind TreeKind, root uint64, data func(dst uint64) []float64) ([][]float64, error) {
	if root >= uint64(e.Nodes()) {
		return nil, fmt.Errorf("comm: root %d out of range", root)
	}
	trees := BuildTrees(kind, e.Dims(), root)
	parts := func(dst uint64, k int) []float64 {
		return chunkOf(data(dst), len(trees), k)
	}
	result := make([][]float64, e.Nodes())
	err := e.Run(func(nd fabric.Node) {
		result[nd.ID()] = ScatterOnNode(nd, root, trees, parts)
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// AllToOne gathers data(src) from every node at root over an SBT. The
// result is indexed by source.
func AllToOne(e fabric.Fabric, root uint64, data func(src uint64) []float64) ([][]float64, error) {
	if root >= uint64(e.Nodes()) {
		return nil, fmt.Errorf("comm: root %d out of range", root)
	}
	tree := cube.SBT(cube.New(e.Dims()), root)
	result := make([][]float64, e.Nodes())
	err := e.Run(func(nd fabric.Node) {
		blocks := GatherOnNode(nd, tree, data(nd.ID()))
		if nd.ID() == root {
			for _, b := range blocks {
				result[b.Src] = b.Data
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// chunkOf splits data into parts nearly-equal chunks and returns chunk k.
func chunkOf(data []float64, parts, k int) []float64 {
	base := len(data) / parts
	rem := len(data) % parts
	off := 0
	for i := 0; i < k; i++ {
		sz := base
		if i < rem {
			sz++
		}
		off += sz
	}
	sz := base
	if k < rem {
		sz++
	}
	return data[off : off+sz]
}
