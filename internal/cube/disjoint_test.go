package cube

import (
	"testing"

	"boolcube/internal/bits"
)

// Saad & Schultz [18], as quoted in Section 2: between any pair (x, y)
// there are n paths, Hamming(x,y) of length Hamming(x,y) and n-H of length
// H+2, and they are internally node-disjoint.
func TestDisjointPathsProperties(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		c := New(n)
		N := uint64(c.Nodes())
		for x := uint64(0); x < N; x++ {
			for y := uint64(0); y < N; y++ {
				if x == y {
					continue
				}
				H := c.Distance(x, y)
				paths := DisjointPaths(c, x, y)
				if len(paths) != n {
					t.Fatalf("n=%d (%b,%b): %d paths, want %d", n, x, y, len(paths), n)
				}
				short, detour := 0, 0
				seen := make(map[uint64]int)
				for pi, p := range paths {
					if end := PathEnd(x, p); end != y {
						t.Fatalf("n=%d (%b,%b): path %v ends at %b", n, x, y, p, end)
					}
					switch len(p) {
					case H:
						short++
					case H + 2:
						detour++
					default:
						t.Fatalf("n=%d (%b,%b): path length %d, want %d or %d", n, x, y, len(p), H, H+2)
					}
					// Internal nodes must be unique across all paths.
					cur := x
					for i, d := range p {
						cur = bits.FlipBit(cur, d)
						if i == len(p)-1 {
							break // endpoint y shared by all
						}
						if prev, dup := seen[cur]; dup {
							t.Fatalf("n=%d (%b,%b): paths %d and %d share node %b", n, x, y, prev, pi, cur)
						}
						seen[cur] = pi
					}
				}
				if short != H || detour != n-H {
					t.Fatalf("n=%d (%b,%b): %d short + %d detours, want %d + %d",
						n, x, y, short, detour, H, n-H)
				}
			}
		}
	}
}

func TestDisjointPathsPanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DisjointPaths(x, x) did not panic")
		}
	}()
	DisjointPaths(New(3), 5, 5)
}
