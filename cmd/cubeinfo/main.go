// Command cubeinfo inspects the combinatorial structure behind the
// transpose algorithms: node neighborhoods, spanning trees, the SPT/DPT/MPT
// path systems of a node, and the ~s equivalence class that makes the MPT
// schedule conflict-free.
//
// Example:
//
//	cubeinfo -n 6 -node 0b000111
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"boolcube/internal/cube"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "cubeinfo: %v\n", err)
		os.Exit(1)
	}
}

func realMain(args []string, out io.Writer) error {
	flag := flag.NewFlagSet("cubeinfo", flag.ContinueOnError)
	n := flag.Int("n", 6, "cube dimensions (even for path systems)")
	nodeStr := flag.String("node", "7", "node address (decimal, 0x hex or 0b binary)")
	tree := flag.String("tree", "", "print a spanning tree instead: sbt, reflected, rotated:<k>, sbnt")
	toStr := flag.String("to", "", "print the n node-disjoint paths to this node instead")
	if err := flag.Parse(args); err != nil {
		return err
	}

	x, err := parseAddr(*nodeStr)
	if err != nil {
		return err
	}
	c := cube.New(*n)
	if x >= uint64(c.Nodes()) {
		return fmt.Errorf("node %d out of range for a %d-cube", x, *n)
	}

	if *tree != "" {
		return printTree(out, c, x, *tree)
	}
	if *toStr != "" {
		y, err := parseAddr(*toStr)
		if err != nil || y >= uint64(c.Nodes()) || y == x {
			return fmt.Errorf("bad -to node %q", *toStr)
		}
		fmt.Fprintf(out, "%d node-disjoint paths from %0*b to %0*b (H=%d):\n",
			c.Dims(), *n, x, *n, y, c.Distance(x, y))
		for i, p := range cube.DisjointPaths(c, x, y) {
			fmt.Fprintf(out, "  path %d (len %d): dims %v\n", i, len(p), p)
		}
		return nil
	}

	fmt.Fprintf(out, "cube: %d dimensions, %d nodes, %d links\n", c.Dims(), c.Nodes(), c.Links())
	fmt.Fprintf(out, "node %0*b:\n", *n, x)
	fmt.Fprintf(out, "  neighbors:")
	for d := 0; d < c.Dims(); d++ {
		fmt.Fprintf(out, " %0*b", *n, c.Neighbor(x, d))
	}
	fmt.Fprintln(out)

	if *n%2 != 0 {
		fmt.Fprintln(out, "  (odd dimension: transpose path systems need even n)")
		return nil
	}
	tr := cube.Tr(x, *n)
	H := cube.HalfHamming(x, *n)
	fmt.Fprintf(out, "  transpose partner tr(x): %0*b (distance %d, H(x)=%d)\n", *n, tr, 2*H, H)
	if H == 0 {
		fmt.Fprintln(out, "  diagonal node: no data movement needed")
		return nil
	}
	fmt.Fprintf(out, "  SPT path: %v\n", cube.SPTPath(x, *n))
	for i, p := range cube.DPTPaths(x, *n) {
		fmt.Fprintf(out, "  DPT path %d: %v\n", i, p)
	}
	for i, p := range cube.MPTPaths(x, *n) {
		fmt.Fprintf(out, "  MPT path %d: %v\n", i, p)
	}
	class := cube.SClass(x, *n)
	parts := make([]string, len(class))
	for i, y := range class {
		parts[i] = fmt.Sprintf("%0*b", *n, y)
	}
	fmt.Fprintf(out, "  ~s class (%d nodes sharing these edges in (2,2H)-disjoint cycles): %s\n",
		len(class), strings.Join(parts, " "))
	return nil
}

func printTree(out io.Writer, c cube.Cube, root uint64, kind string) error {
	var t *cube.Tree
	switch {
	case kind == "sbt":
		t = cube.SBT(c, root)
	case kind == "reflected":
		t = cube.ReflectedSBT(c, root)
	case kind == "sbnt":
		t = cube.SBnT(c, root)
	case strings.HasPrefix(kind, "rotated:"):
		k, err := strconv.Atoi(strings.TrimPrefix(kind, "rotated:"))
		if err != nil {
			return fmt.Errorf("bad rotation %q", kind)
		}
		t = cube.RotatedSBT(c, root, k)
	default:
		return fmt.Errorf("unknown tree %q", kind)
	}
	fmt.Fprintf(out, "%s spanning tree rooted at %0*b:\n", kind, c.Dims(), root)
	var walk func(x uint64, depth int)
	walk = func(x uint64, depth int) {
		fmt.Fprintf(out, "%s%0*b (subtree %d)\n", strings.Repeat("  ", depth+1), c.Dims(), x, t.SubtreeSize(x))
		for _, ch := range t.Children[x] {
			walk(ch, depth+1)
		}
	}
	walk(root, 0)
	return nil
}

func parseAddr(s string) (uint64, error) {
	switch {
	case strings.HasPrefix(s, "0b"):
		return strconv.ParseUint(s[2:], 2, 64)
	case strings.HasPrefix(s, "0x"):
		return strconv.ParseUint(s[2:], 16, 64)
	default:
		return strconv.ParseUint(s, 10, 64)
	}
}
