package boolcube

import (
	"errors"
	"reflect"
	"testing"
)

// recoverLoop drives Recover to completion, bounding the attempts.
func recoverLoop(t *testing.T, xe *ExecError, xo ExecOptions) (*Result, *Checkpoint) {
	t.Helper()
	first := xe.Checkpoint
	for attempt := 0; attempt < 4; attempt++ {
		res, err := Recover(xe.Checkpoint, xo)
		if err == nil {
			return res, first
		}
		if !errors.As(err, &xe) {
			t.Fatalf("Recover attempt %d: %v (not a resumable *ExecError)", attempt, err)
		}
	}
	t.Fatalf("recovery did not converge in 4 attempts")
	return nil, nil
}

// crashSetup compiles a p×q transpose on an n-cube and returns the compiled
// plan, the scattered input, the unfaulted baseline and the expected result.
func crashSetup(t *testing.T, alg Algorithm, p, q, n int) (*CompiledTranspose, func() *Dist, *Result, *Matrix) {
	t.Helper()
	m := NewIotaMatrix(p, q)
	want := m.Transposed()
	before := TwoDimConsecutive(p, q, n/2, n/2, Binary)
	after := TwoDimConsecutive(q, p, n/2, n/2, Binary)
	ct, err := Compile(before, after, Options{Algorithm: alg, Machine: IPSCNPort()})
	if err != nil {
		t.Fatal(err)
	}
	src := func() *Dist { return Scatter(m, before) }
	base, err := ct.Execute(src())
	if err != nil {
		t.Fatal(err)
	}
	return ct, src, base, want
}

// The tentpole scenario: a node crash-stops mid-transpose, the run fails
// with a typed *NodeDownError carrying a checkpoint, and Recover relabels
// the cube onto the survivors and finishes bit-identically to the unfaulted
// run — at less traffic than a restart.
func TestRecoverAfterMidRunNodeCrash(t *testing.T) {
	ct, src, base, want := crashSetup(t, MPT, 5, 5, 6)

	// Scan crash instants for a kill that lands after real progress;
	// deterministic, so the failing instant is stable.
	var xe *ExecError
	for _, frac := range []float64{0.3, 0.45, 0.6, 0.75} {
		fp, ferr := CompileFaults(NodeCrash(11, frac*base.Stats.Time), 6)
		if ferr != nil {
			t.Fatal(ferr)
		}
		_, err := ct.ExecuteWith(src(), ExecOptions{Faults: fp})
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrNodeDown) {
			t.Fatalf("crashed run failed with %v, want a node-down failure", err)
		}
		var cand *ExecError
		if !errors.As(err, &cand) {
			t.Fatalf("node-down failure %v carries no checkpoint", err)
		}
		var nde *NodeDownError
		if !errors.As(err, &nde) || nde.Node != 11 {
			t.Fatalf("failure %v does not name the crashed node 11", err)
		}
		if xe == nil || cand.Checkpoint.DeliveredElems() > xe.Checkpoint.DeliveredElems() {
			xe = cand
		}
		if xe.Checkpoint.DeliveredElems() > 0 {
			break
		}
	}
	if xe == nil {
		t.Fatal("no crash instant interrupted the run")
	}

	res, first := recoverLoop(t, xe, ExecOptions{})
	if verr := res.Dist.Verify(want); verr != nil {
		t.Fatalf("recovered transpose wrong: %v", verr)
	}
	if !reflect.DeepEqual(res.Dist.Local, base.Dist.Local) {
		t.Fatal("recovered distribution differs bit-for-bit from the unfaulted run")
	}
	if !reflect.DeepEqual(xe.Checkpoint.Dead, []uint64{11}) {
		t.Fatalf("checkpoint Dead = %v, want [11]", xe.Checkpoint.Dead)
	}
	recoveryBytes := res.Stats.Bytes - first.Stats.Bytes
	if recoveryBytes <= 0 {
		t.Fatalf("recovery moved no traffic (total %d, sunk %d)", res.Stats.Bytes, first.Stats.Bytes)
	}
	if recoveryBytes >= base.Stats.Bytes {
		t.Errorf("recovery traffic %d not cheaper than full restart %d", recoveryBytes, base.Stats.Bytes)
	}
}

// Two sequential kills: the second node dies during the recovery run, and a
// second Recover folds it in and still finishes element-exact.
func TestRecoverSurvivesSecondKillDuringRecovery(t *testing.T) {
	ct, src, base, want := crashSetup(t, DPT, 5, 5, 6)

	// Scan second victims and kill instants for a kill that fires strictly
	// after the first failure was detected AND lands on a node still busy in
	// the recovery run (a node whose own transfers finish early outlives its
	// kill — exactly the semantics the simulated backend promises). The scan
	// is deterministic, so the combination found is stable.
	type combo struct {
		victim uint64
		frac2  float64
	}
	var combos []combo
	for _, victim := range []uint64{54, 22, 45, 27} {
		for _, frac2 := range []float64{1.05, 1.2, 1.5, 1.8} {
			combos = append(combos, combo{victim, frac2})
		}
	}
	for _, c := range combos {
		spec := FaultSpec{Rules: []FaultRule{
			{Kind: FaultCrash, Node: 7, Start: 0.35 * base.Stats.Time},
			{Kind: FaultCrash, Node: c.victim, Start: c.frac2 * base.Stats.Time},
		}}
		fp, err := CompileFaults(spec, 6)
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := ct.ExecuteWith(src(), ExecOptions{Faults: fp})
		var xe *ExecError
		if !errors.As(rerr, &xe) {
			t.Fatalf("first kill did not interrupt the run: %v", rerr)
		}
		if ct2, ok := fp.CrashAt(c.victim); !ok || ct2 <= xe.Checkpoint.At {
			continue // both kills landed in the first run; not sequential
		}

		var res *Result
		attempts := 0
		for ; attempts < 4; attempts++ {
			var err error
			res, err = Recover(xe.Checkpoint, ExecOptions{})
			if err == nil {
				break
			}
			if !errors.As(err, &xe) {
				t.Fatalf("Recover attempt %d: %v (not a resumable *ExecError)", attempts, err)
			}
		}
		if res == nil {
			t.Fatal("recovery did not converge in 4 attempts")
		}
		if attempts < 1 {
			continue // recovery finished before the second kill; try another
		}
		wantDead := []uint64{7, c.victim}
		if c.victim < 7 {
			wantDead = []uint64{c.victim, 7}
		}
		if !reflect.DeepEqual(xe.Checkpoint.Dead, wantDead) {
			t.Fatalf("accumulated dead set = %v, want %v", xe.Checkpoint.Dead, wantDead)
		}
		if verr := res.Dist.Verify(want); verr != nil {
			t.Fatalf("recovered transpose wrong: %v", verr)
		}
		if !reflect.DeepEqual(res.Dist.Local, base.Dist.Local) {
			t.Fatal("recovered distribution differs bit-for-bit from the unfaulted run")
		}
		return
	}
	t.Fatal("no second-kill instant interrupted a recovery attempt")
}

// Recovery must be deterministic on the simulated backend: the same crash
// scenario recovered twice yields bit-identical results and statistics.
func TestRecoverDeterministicOnSimnet(t *testing.T) {
	run := func() (*Result, []uint64) {
		ct, src, base, _ := crashSetup(t, SPT, 4, 4, 6)
		fp, err := CompileFaults(NodeCrash(5, 0.4*base.Stats.Time), 6)
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := ct.ExecuteWith(src(), ExecOptions{Faults: fp})
		var xe *ExecError
		if !errors.As(rerr, &xe) {
			t.Fatalf("kill did not interrupt the run: %v", rerr)
		}
		res, _ := recoverLoop(t, xe, ExecOptions{})
		return res, xe.Checkpoint.Dead
	}
	a, deadA := run()
	b, deadB := run()
	if !reflect.DeepEqual(a.Dist.Local, b.Dist.Local) {
		t.Fatal("recovered distributions differ across reruns")
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("recovered stats differ across reruns:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(deadA, deadB) {
		t.Fatalf("dead sets differ across reruns: %v vs %v", deadA, deadB)
	}
}

// A crash before any traffic moves recovers from a zero-progress
// checkpoint: everything reruns on the survivors.
func TestRecoverFromImmediateCrash(t *testing.T) {
	ct, src, _, want := crashSetup(t, MPT, 4, 4, 4)
	fp, err := CompileFaults(NodeCrash(3, 0), 4)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := ct.ExecuteWith(src(), ExecOptions{Faults: fp})
	var xe *ExecError
	if !errors.As(rerr, &xe) {
		t.Fatalf("immediate kill did not interrupt the run: %v", rerr)
	}
	res, _ := recoverLoop(t, xe, ExecOptions{})
	if verr := res.Dist.Verify(want); verr != nil {
		t.Fatalf("recovered transpose wrong: %v", verr)
	}
}

// Recover without any dead node must behave exactly like Resume, so every
// *ExecError can be routed through it.
func TestRecoverDelegatesToResumeWithoutDeadNodes(t *testing.T) {
	ct, src, base, want := crashSetup(t, MPT, 5, 5, 6)
	var xe *ExecError
	for seed := int64(1); seed <= 32; seed++ {
		fp, ferr := CompileFaults(FaultSpec{Seed: seed, Rules: []FaultRule{
			{Kind: FaultRandomLinks, Count: 2, Start: 0.4 * base.Stats.Time},
		}}, 6)
		if ferr != nil {
			t.Fatal(ferr)
		}
		_, err := ct.ExecuteWith(src(), ExecOptions{Faults: fp})
		if errors.As(err, &xe) {
			break
		}
	}
	if xe == nil {
		t.Fatal("no seed in 1..32 made a link kill bite")
	}
	res, _ := recoverLoop(t, xe, ExecOptions{})
	if verr := res.Dist.Verify(want); verr != nil {
		t.Fatalf("recovered transpose wrong: %v", verr)
	}
	if xe.Checkpoint.Dead != nil {
		t.Fatalf("link-fault checkpoint grew a dead set: %v", xe.Checkpoint.Dead)
	}
}
