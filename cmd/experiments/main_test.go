package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := realMain(args, &sb)
	return sb.String(), err
}

func TestList(t *testing.T) {
	s, err := capture(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig10", "table3", "theorem2", "ablation-paths"} {
		if !strings.Contains(s, id) {
			t.Errorf("list missing %q", id)
		}
	}
}

func TestRunOneText(t *testing.T) {
	s, err := capture(t, "-exp", "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "== table1:") {
		t.Errorf("text output malformed:\n%s", s)
	}
}

func TestRunOneMarkdownAndCSV(t *testing.T) {
	s, err := capture(t, "-exp", "table2", "-format", "md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "### table2") {
		t.Errorf("md output malformed:\n%s", s)
	}
	s, err = capture(t, "-exp", "table2", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s, "encoding/partitioning,") {
		t.Errorf("csv output malformed:\n%s", s)
	}
}

func TestRunOneJSON(t *testing.T) {
	s, err := capture(t, "-exp", "table2", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	var tab struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(s), &tab); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, s)
	}
	if tab.ID != "table2" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
		t.Errorf("json output malformed:\n%s", s)
	}
}

func TestExperimentsErrors(t *testing.T) {
	if _, err := capture(t, "-exp", "fig999"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := capture(t, "-exp", "table1", "-format", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := capture(t); err == nil {
		t.Error("no mode accepted")
	}
}
