package simnet

import (
	"runtime"
	"testing"

	"boolcube/internal/fabric"
	"boolcube/internal/machine"
)

// BenchmarkEngineExchange measures the host-side overhead of the
// baton-passing engine: one full dimension scan of exchanges on a 6-cube.
func BenchmarkEngineExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := New(6, machine.Ideal(machine.OnePort))
		if err != nil {
			b.Fatal(err)
		}
		err = e.Run(func(nd fabric.Node) {
			for d := 5; d >= 0; d-- {
				nd.Exchange(d, Msg{Data: make([]float64, 8)})
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchTransposeSched is the scheduler benchmark workload of
// BENCH_engine.json: a repeated 8-cube exchange transpose (every node
// exchanges pooled payloads over all dimensions, four passes), run under
// either the indexed ready-queue scheduler or the linear-scan reference.
// scripts/bench_engine.sh parses the Indexed/Reference pair and gates their
// ratio in scripts/check.sh.
func benchTransposeSched(b *testing.B, reference bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := New(8, machine.IPSC())
		if err != nil {
			b.Fatal(err)
		}
		e.SetReferenceScheduler(reference)
		err = e.Run(func(nd fabric.Node) {
			for rep := 0; rep < 4; rep++ {
				for d := nd.Dims() - 1; d >= 0; d-- {
					m := nd.Exchange(d, Msg{Data: nd.AllocData(64)})
					nd.Recycle(m)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTransposeIndexed(b *testing.B)   { benchTransposeSched(b, false) }
func BenchmarkEngineTransposeReference(b *testing.B) { benchTransposeSched(b, true) }

// benchScan runs one SBnT-order dimension-scan all-to-all: every node
// exchanges a pooled payload with its neighbor across each of the n
// dimensions, high dimension first — the §4 single-path transpose schedule
// at engine level. shards selects the scheduler (-1 serial indexed, >= 1
// sharded with that worker count, 0 auto).
func benchScan(b *testing.B, n, elems, passes, shards int, params machine.Params) *Engine {
	e, err := New(n, params)
	if err != nil {
		b.Fatal(err)
	}
	e.SetShards(shards)
	err = e.Run(func(nd fabric.Node) {
		for rep := 0; rep < passes; rep++ {
			for d := nd.Dims() - 1; d >= 0; d-- {
				m := nd.Exchange(d, Msg{Data: nd.AllocData(elems)})
				nd.Recycle(m)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEngineCube10Sharded / ...Serial are the sharded-vs-serial gate
// pair of BENCH_engine.json: the same 10-cube (1024 node) scan under the
// sharded epoch scheduler and the serial indexed one. check.sh requires
// sharded/serial >= 1.0x.
func BenchmarkEngineCube10Sharded(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchScan(b, 10, 16, 2, 1, machine.ConnectionMachine())
	}
}

func BenchmarkEngineCube10Serial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchScan(b, 10, 16, 2, -1, machine.ConnectionMachine())
	}
}

// BenchmarkEngineCube16SBnT is the Connection Machine scale deliverable: a
// full 16-cube (65,536 node) SBnT-order all-to-all dimension scan on the
// CM machine model, auto-sharded. Alongside ns/op it reports bytes/node —
// the retained per-node engine footprint (heap delta across construction
// and run, after GC), the memory-ceiling metric of ROADMAP item 3.
func BenchmarkEngineCube16SBnT(b *testing.B) {
	b.ReportAllocs()
	var before, after runtime.MemStats
	for i := 0; i < b.N; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		e := benchScan(b, 16, 4, 1, 0, machine.ConnectionMachine())
		runtime.GC()
		runtime.ReadMemStats(&after)
		if e.Stats().Sends != int64(1<<16)*16 {
			b.Fatalf("unexpected send count %d", e.Stats().Sends)
		}
	}
	if after.HeapAlloc > before.HeapAlloc {
		b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(1<<16), "bytes/node")
	}
}

func BenchmarkEngineSpawn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := New(8, machine.Ideal(machine.NPort))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(func(nd fabric.Node) {}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChecksum measures the always-on delivery-audit pass; the
// checkpoint-overhead gate depends on this staying near memory speed.
func BenchmarkChecksum(b *testing.B) {
	data := make([]float64, 1024)
	for i := range data {
		data[i] = float64(i)
	}
	b.SetBytes(int64(len(data) * 8))
	for i := 0; i < b.N; i++ {
		benchSum = Checksum(data)
	}
}

var benchSum uint64
