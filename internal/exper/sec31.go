package exper

import (
	"boolcube/internal/comm"
	"boolcube/internal/cost"
	"boolcube/internal/machine"
	"boolcube/internal/simnet"
)

func init() {
	register("sec31scatter", sec31Scatter)
}

// sec31Scatter reproduces the Section 3.1 comparison for one-to-all
// personalized communication: single SBT (one-port optimal within 2x) vs n
// rotated SBTs vs the spanning balanced n-tree, with the paper's model
// times printed next to the simulation.
func sec31Scatter() (*Table, error) {
	t := &Table{
		ID:    "sec31scatter",
		Title: "one-to-all personalized communication: SBT vs n rotated SBTs vs SBnT (n-port iPSC costs)",
		Columns: []string{"cube dims n", "total KB", "SBT sim (ms)", "rotated sim (ms)", "SBnT sim (ms)",
			"model 1-port (ms)", "model n-port (ms)", "lower bound (ms)"},
		Notes: []string{
			"the transfer term drops by ~n with n-port trees (Section 3.1);",
			"the SBT's bottleneck is its N/2-node root subtree on one link;",
			"the simulation forwards whole subtree bundles store-and-forward, so",
			"absolute times sit above the pipelined models while the ordering holds",
		},
	}
	mach := machine.IPSCNPort()
	for _, n := range []int{4, 6, 8} {
		for _, logBytes := range []int{14, 18} {
			M := 1 << uint(logBytes)
			elems := M / mach.ElemBytes / (1 << uint(n)) // per destination
			if elems < 1 {
				elems = 1
			}
			row := []interface{}{n, 1 << uint(logBytes-10)}
			for _, kind := range []comm.TreeKind{comm.KindSBT, comm.KindRotatedSBTs, comm.KindSBnT} {
				e, err := simnet.New(n, mach)
				if err != nil {
					return nil, err
				}
				_, err = comm.OneToAll(e, kind, 0, func(dst uint64) []float64 {
					return make([]float64, elems)
				})
				if err != nil {
					return nil, err
				}
				row = append(row, e.Stats().Time/1000)
			}
			Mf := float64(M)
			row = append(row,
				cost.OneToAllSBT(Mf, n, mach)/1000,
				cost.OneToAllNPort(Mf, n, mach)/1000,
				cost.OneToAllLowerBound(Mf, n, mach)/1000)
			t.AddRow(row...)
		}
	}
	return t, nil
}
