// Crash-stop node kills on the live backend: real teardown, heartbeat
// detection.
//
// When the installed fault model also implements fabric.CrashModel, Run
// arms one kill timer per scheduled node. At its crash time (wall-clock µs
// since Run) the node is marked dead and its goroutine is actually torn
// down: every blocking point — receives, semaphore acquisition, sleeps, and
// the per-operation abort checks — observes the flag and unwinds with a
// crash sentinel the goroutine wrapper recognizes as a death rather than a
// program failure. A node whose program already returned is past harm: its
// sends all happened, so the kill is recorded as never fired (mirroring the
// simulated backend, where a node that reaches its final operation before
// its crash time survives).
//
// Detection is by heartbeat: each at-risk node gets a beater goroutine
// stamping a last-heard time every HeartbeatInterval — alive even while the
// node's program is blocked, so only death (or the end of the run) silences
// it. A detector samples the stamps every quarter suspicion timeout and
// aborts the run with a typed *fabric.NodeDownError once a node has been
// silent past the timeout, naming every suspected node, its last-heard time
// and the detection instant. Detection latency is therefore bounded by the
// suspicion timeout plus one detector tick. If every survivor finishes
// before the detector fires (nobody needed the dead node again), Run still
// fails with the same typed error: the dead node's own program never
// completed, so the job is not done.
package livenet

import (
	"fmt"
	"sort"
	"time"

	"boolcube/internal/fabric"
)

// errCrashed unwinds a crash-stopped node goroutine; the wrapper recognizes
// it as a death, not a program failure.
var errCrashed = fmt.Errorf("livenet: node crash-stopped")

// startCrashes arms the kill timers, heartbeats and the failure detector
// for the next Run. The returned stop function cancels any timer that has
// not fired; the done channel stops the beaters and the detector.
func (e *Engine) startCrashes(done chan struct{}) (stop func()) {
	if e.crashModel == nil {
		return func() {}
	}
	var scheduled []uint64
	for _, id := range e.crashModel.CrashedNodes() {
		if int(id) < e.nodesCount {
			scheduled = append(scheduled, id)
		}
	}
	if len(scheduled) == 0 {
		return func() {}
	}
	now := e.now()
	timers := make([]*time.Timer, 0, len(scheduled))
	for _, id := range scheduled {
		nd := e.nodes[id]
		nd.lastBeat.Store(int64(now))
		ct, ok := e.crashModel.CrashAt(id)
		if !ok {
			continue
		}
		delay := time.Duration((ct - now) * float64(time.Microsecond))
		if delay < 0 {
			delay = 0
		}
		timers = append(timers, time.AfterFunc(delay, func() { e.crashLive(nd) }))
		go e.heartbeat(nd, done)
	}
	go e.detect(scheduled, done)
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}

// crashLive kills one node now: the flag and closed channel wake every
// blocking point, which unwind the goroutine with the crash sentinel. A
// node whose program already returned survives — its work is complete.
func (e *Engine) crashLive(nd *Node) {
	if nd.finished.Load() {
		return
	}
	nd.mu.Lock()
	if !nd.crashed.Load() {
		nd.crashed.Store(true)
		close(nd.crashCh)
		nd.cond.Broadcast()
	}
	nd.mu.Unlock()
}

// heartbeat stamps the node's last-heard time every HeartbeatInterval until
// the node dies, the engine aborts, or the run ends. It is a separate
// goroutine from the node's program on purpose: a blocked program still
// heartbeats — only death silences a node.
func (e *Engine) heartbeat(nd *Node, done chan struct{}) {
	tick := time.NewTicker(e.sup.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-nd.crashCh:
			return
		case <-e.abortCh:
			return
		case <-tick.C:
			nd.lastBeat.Store(int64(e.now()))
		}
	}
}

// detect is the failure detector: every quarter suspicion timeout it checks
// each at-risk node's last heartbeat and aborts the run with a typed
// *fabric.NodeDownError once any has been silent past the timeout.
func (e *Engine) detect(scheduled []uint64, done chan struct{}) {
	tick := time.NewTicker(e.sup.SuspicionTimeout / 4)
	defer tick.Stop()
	timeout := float64(e.sup.SuspicionTimeout) / float64(time.Microsecond)
	for {
		select {
		case <-done:
			return
		case <-e.abortCh:
			return
		case <-tick.C:
			now := e.now()
			var dead []uint64
			for _, id := range scheduled {
				nd := e.nodes[id]
				if nd.finished.Load() {
					continue
				}
				if now-float64(nd.lastBeat.Load()) > timeout {
					dead = append(dead, id)
				}
			}
			if len(dead) > 0 {
				e.abort(e.nodeDownError(dead, now))
				return
			}
		}
	}
}

// nodeDownError builds the typed detection error for the given dead nodes
// (any order) at detection time detectedAt.
func (e *Engine) nodeDownError(dead []uint64, detectedAt float64) error {
	sort.Slice(dead, func(a, b int) bool { return dead[a] < dead[b] })
	first := dead[0]
	at := float64(e.nodes[first].lastBeat.Load())
	if e.crashModel != nil {
		if ct, ok := e.crashModel.CrashAt(first); ok {
			at = ct
		}
	}
	return &fabric.NodeDownError{
		Node:       first,
		Nodes:      dead,
		At:         at,
		LastHeard:  float64(e.nodes[first].lastBeat.Load()),
		DetectedAt: detectedAt,
	}
}

// firedCrashError reports the kills that actually fired, for runs that end
// without any other failure: nil when every scheduled node survived (died
// after finishing, or never died), a *fabric.NodeDownError otherwise.
func (e *Engine) firedCrashError() error {
	var dead []uint64
	for _, nd := range e.nodes { // ascending node id
		if nd.crashed.Load() && !nd.finished.Load() {
			dead = append(dead, nd.id)
		}
	}
	if len(dead) == 0 {
		return nil
	}
	return e.nodeDownError(dead, e.elapsed) //cubevet:ignore ckptsafe -- called after wg.Wait: every node goroutine has already unwound
}
