package exper

import (
	"fmt"

	"boolcube/internal/comm"
	"boolcube/internal/cost"
	"boolcube/internal/field"
	"boolcube/internal/machine"
	"boolcube/internal/simnet"
)

func init() {
	register("table1", table1)
	register("table2", table2)
	register("table3", table3)
}

// table1 reproduces Table 1: the processor address of a matrix element for
// consecutive and cyclic assignments under binary and Gray encodings, shown
// for a concrete 16x16 matrix element on a 2-cube-per-direction.
func table1() (*Table, error) {
	p, q, n := 4, 4, 2
	u, v := uint64(0b1011), uint64(0b0110)
	t := &Table{
		ID:      "table1",
		Title:   fmt.Sprintf("processor address of element (u,v)=(%04b,%04b), 16x16 matrix, n=%d", u, v, n),
		Columns: []string{"encoding/partitioning", "consecutive", "cyclic"},
	}
	row := func(name string, cons, cyc field.Layout) {
		t.AddRow(name,
			fmt.Sprintf("%0*b", n, cons.ProcOf(u, v)),
			fmt.Sprintf("%0*b", n, cyc.ProcOf(u, v)))
	}
	row("binary, row",
		field.OneDimConsecutiveRows(p, q, n, field.Binary),
		field.OneDimCyclicRows(p, q, n, field.Binary))
	row("binary, column",
		field.OneDimConsecutiveCols(p, q, n, field.Binary),
		field.OneDimCyclicCols(p, q, n, field.Binary))
	row("gray, row",
		field.OneDimConsecutiveRows(p, q, n, field.Gray),
		field.OneDimCyclicRows(p, q, n, field.Gray))
	row("gray, column",
		field.OneDimConsecutiveCols(p, q, n, field.Gray),
		field.OneDimCyclicCols(p, q, n, field.Gray))
	return t, nil
}

// table2 reproduces Table 2: combined (contiguous and split) assignments.
func table2() (*Table, error) {
	p, q, n, s := 5, 5, 3, 1
	u, v := uint64(0b10110), uint64(0b01101)
	t := &Table{
		ID:      "table2",
		Title:   fmt.Sprintf("combined encodings of element (u,v)=(%05b,%05b), n=%d, s=%d", u, v, n, s),
		Columns: []string{"encoding/partitioning", "contiguous (offset 1)", "non-contiguous (split s=1)"},
	}
	row := func(name string, rows bool, enc field.Encoding) {
		cont := field.CombinedContiguous(p, q, n, 1, rows, enc)
		split := field.CombinedSplit(p, q, n, s, rows, enc)
		t.AddRow(name,
			fmt.Sprintf("%0*b", n, cont.ProcOf(u, v)),
			fmt.Sprintf("%0*b", n, split.ProcOf(u, v)))
	}
	row("binary, row", true, field.Binary)
	row("binary, column", false, field.Binary)
	row("gray, row", true, field.Gray)
	row("gray, column", false, field.Gray)
	return t, nil
}

// table3 reproduces Table 3: estimated vs simulated time for some-to-all
// personalized communication with k splitting and l exchange steps, for
// one-port and n-port communication on the iPSC cost structure.
func table3() (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "some-to-all personalized communication: k splitting + l all-to-all steps (iPSC costs)",
		Columns: []string{"k", "l", "model 1-port (µs)", "sim 1-port (µs)", "model n-port (µs)", "sim n-port (µs)"},
		Notes: []string{
			"total data M = 256 KB spread over the 2^l sources",
			"simulated with splitting performed first (Theorem 1 optimal order)",
			"the simulation runs the dimension-sequential exchange schedule, which cannot",
			"exploit multiple ports, so the n-port simulation matches the one-port one;",
			"the n-port model column is the bound achievable with tree-pipelined routing",
		},
	}
	const totalBytes = 1 << 18
	cases := []struct{ k, l int }{{1, 5}, {2, 4}, {3, 3}, {4, 2}, {5, 1}, {0, 6}, {6, 0}}
	for _, c := range cases {
		n := c.k + c.l
		one, err := simulateSomeToAll(totalBytes, c.k, c.l, machine.IPSC())
		if err != nil {
			return nil, err
		}
		np, err := simulateSomeToAll(totalBytes, c.k, c.l, machine.IPSCNPort())
		if err != nil {
			return nil, err
		}
		_ = n
		t.AddRow(c.k, c.l,
			cost.SomeToAllOnePort(totalBytes, c.k, c.l, machine.IPSC()), one,
			cost.SomeToAllNPort(totalBytes, c.k, c.l, machine.IPSCNPort()), np)
	}
	return t, nil
}

func simulateSomeToAll(totalBytes, k, l int, mach machine.Params) (float64, error) {
	n := k + l
	e, err := simnet.New(n, mach)
	if err != nil {
		return 0, err
	}
	splitDims := make([]int, 0, k)
	for d := n - 1; d >= l; d-- {
		splitDims = append(splitDims, d)
	}
	exchDims := make([]int, 0, l)
	for d := l - 1; d >= 0; d-- {
		exchDims = append(exchDims, d)
	}
	// Each of the 2^l sources holds M/2^l bytes, one block per destination
	// in its n-dimensional subcube.
	elems := totalBytes / mach.ElemBytes / (1 << uint(l)) / (1 << uint(n))
	if elems < 1 {
		elems = 1
	}
	block := func(src, dst uint64) []float64 { return make([]float64, elems) }
	if k == 0 {
		_, err = comm.AllToAllExchange(e, exchDims, comm.SingleMessage, block)
	} else {
		_, err = comm.SomeToAll(e, splitDims, exchDims, comm.SingleMessage, true, block)
	}
	if err != nil {
		return 0, err
	}
	return e.Stats().Time, nil
}
