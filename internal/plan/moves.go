package plan

import (
	"fmt"
	"sort"

	"boolcube/internal/field"
)

// Moves precomputes, for a data rearrangement from layout `before` to layout
// `after`, which local slots each processor sends to and receives from every
// other processor. Both sides enumerate each (srcProc, dstProc) transfer set
// in ascending element-address order, so payloads travel as bare data with
// no per-element headers — exactly like the machines the paper measures.
//
// Building a Moves is the O(P·Q) part of planning; replaying it (Gather and
// Scatter) touches only the slots actually moved. A Moves is immutable after
// construction and safe for concurrent readers.
type Moves struct {
	before, after field.Layout
	// out[srcProc][dstProc] = source local slots in canonical order.
	out []map[uint64][]int
	// in[dstProc][srcProc] = destination local slots in canonical order.
	in []map[uint64][]int
	// dests[srcProc] = destinations other than srcProc, ascending.
	dests [][]uint64
}

// NewMoves builds the move-set. If transpose is true, element (u, v) of the
// before-matrix is placed as element (v, u) of the after-matrix (whose
// layout must have the transposed shape); otherwise the shapes must match
// and elements keep their indices (a pure repartitioning).
func NewMoves(before, after field.Layout, transpose bool) (*Moves, error) {
	if err := before.Validate(); err != nil {
		return nil, fmt.Errorf("plan: invalid before layout: %w", err)
	}
	if err := after.Validate(); err != nil {
		return nil, fmt.Errorf("plan: invalid after layout: %w", err)
	}
	if transpose {
		if after.P != before.Q || after.Q != before.P {
			return nil, fmt.Errorf("plan: transpose needs transposed shapes, got %dx%d -> %dx%d",
				before.P, before.Q, after.P, after.Q)
		}
	} else {
		if after.P != before.P || after.Q != before.Q {
			return nil, fmt.Errorf("plan: repartition needs matching shapes, got %dx%d -> %dx%d",
				before.P, before.Q, after.P, after.Q)
		}
	}
	type move struct {
		key    uint64 // element address in the before space, for ordering
		ss, ds int
		sp, dp uint64
	}
	// Validate bounds P+Q, so these shifts stay below word size.
	P := uint64(1) << uint(before.P)
	Q := uint64(1) << uint(before.Q)
	moves := make([]move, 0, P*Q)
	for u := uint64(0); u < P; u++ {
		for v := uint64(0); v < Q; v++ {
			au, av := u, v
			if transpose {
				au, av = v, u
			}
			moves = append(moves, move{
				key: u<<uint(before.Q) | v,
				sp:  before.ProcOf(u, v), ss: int(before.LocalOf(u, v)),
				dp: after.ProcOf(au, av), ds: int(after.LocalOf(au, av)),
			})
		}
	}
	sort.Slice(moves, func(a, b int) bool { return moves[a].key < moves[b].key })

	m := &Moves{
		before: before, after: after,
		out: make([]map[uint64][]int, before.N()),
		in:  make([]map[uint64][]int, after.N()),
	}
	for i := range m.out {
		m.out[i] = make(map[uint64][]int)
	}
	for i := range m.in {
		m.in[i] = make(map[uint64][]int)
	}
	for _, mv := range moves {
		m.out[mv.sp][mv.dp] = append(m.out[mv.sp][mv.dp], mv.ss)
		m.in[mv.dp][mv.sp] = append(m.in[mv.dp][mv.sp], mv.ds)
	}
	m.dests = make([][]uint64, before.N())
	for sp := range m.dests {
		var d []uint64
		for dp := range m.out[sp] {
			if dp != uint64(sp) {
				d = append(d, dp)
			}
		}
		sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
		m.dests[sp] = d
	}
	return m, nil
}

// MustMoves is NewMoves for internally constructed layout pairs whose
// validity is an invariant, not an input condition.
func MustMoves(before, after field.Layout, transpose bool) *Moves {
	m, err := NewMoves(before, after, transpose)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// Before returns the source layout.
func (m *Moves) Before() field.Layout { return m.before }

// After returns the destination layout.
func (m *Moves) After() field.Layout { return m.after }

// Gather collects the payload srcProc sends to dstProc from its local
// array, in canonical order.
func (m *Moves) Gather(srcProc uint64, local []float64, dstProc uint64) []float64 {
	return m.gatherSlots(m.out[srcProc][dstProc], local)
}

// GatherRange collects the [off, off+n) sub-range of the canonical
// (srcProc, dstProc) payload — the chunk a single path of a multi-path
// route carries.
func (m *Moves) GatherRange(srcProc uint64, local []float64, dstProc uint64, off, n int) []float64 {
	slots := m.out[srcProc][dstProc]
	return m.gatherSlots(slots[off:off+n], local)
}

func (m *Moves) gatherSlots(slots []int, local []float64) []float64 {
	data := make([]float64, len(slots))
	m.gatherSlotsInto(slots, local, data)
	return data
}

func (m *Moves) gatherSlotsInto(slots []int, local, dst []float64) {
	for i, s := range slots {
		dst[i] = local[s]
	}
}

// GatherInto is Gather into a caller-provided buffer (len(dst) must equal
// PayloadLen(srcProc, dstProc)), so replay loops can gather every
// destination's payload into one preallocated arena.
func (m *Moves) GatherInto(srcProc uint64, local []float64, dstProc uint64, dst []float64) {
	slots := m.out[srcProc][dstProc]
	if len(slots) != len(dst) {
		panic("plan: gather buffer size does not match move-set")
	}
	m.gatherSlotsInto(slots, local, dst)
}

// GatherRangeInto is GatherRange into a caller-provided buffer of length n,
// so flow materialization can pack every payload into one arena instead of
// allocating per flow.
func (m *Moves) GatherRangeInto(srcProc uint64, local []float64, dstProc uint64, off, n int, dst []float64) {
	if len(dst) != n {
		panic("plan: gather buffer size does not match range")
	}
	slots := m.out[srcProc][dstProc]
	m.gatherSlotsInto(slots[off:off+n], local, dst)
}

// Scatter places a payload received from srcProc into the destination local
// array.
func (m *Moves) Scatter(dstProc uint64, local []float64, srcProc uint64, data []float64) {
	slots := m.in[dstProc][srcProc]
	if len(slots) != len(data) {
		panic("plan: payload size does not match move-set")
	}
	for i, s := range slots {
		local[s] = data[i]
	}
}

// ScatterRange places the [off, off+len(data)) sub-range of the canonical
// (srcProc, dstProc) payload into the destination local array — the
// receive-side counterpart of GatherRange, used when multi-path chunks are
// scattered per flow (e.g. after a failover pass abandons some of them).
func (m *Moves) ScatterRange(dstProc uint64, local []float64, srcProc uint64, off int, data []float64) {
	slots := m.in[dstProc][srcProc]
	if off < 0 || off+len(data) > len(slots) {
		panic("plan: payload range does not match move-set")
	}
	for i, s := range slots[off : off+len(data)] {
		local[s] = data[i]
	}
}

// Destinations lists the processors srcProc sends to (excluding itself),
// ascending. The returned slice is shared and must not be modified.
func (m *Moves) Destinations(srcProc uint64) []uint64 { return m.dests[srcProc] }

// PayloadLen returns the number of elements srcProc sends to dstProc.
func (m *Moves) PayloadLen(srcProc, dstProc uint64) int { return len(m.out[srcProc][dstProc]) }
