package core

import (
	"boolcube/internal/fabric"
	"boolcube/internal/plan"
	"boolcube/internal/router"
)

// Resume finishes a checkpointed execution: it derives the residual move-set
// (plan.Plan.Remaining against the checkpoint's delivery record), recompiles
// it as direct flows, and runs them against the post-failure fault state —
// by default the checkpoint's own fault schedule shifted to the failure
// instant (fault.Plan.After), under which every link that failed mid-run is
// permanently down and the default reroute policy routes around it on
// disjoint-path alternatives. The residuals finish into the checkpoint's own
// destination arrays, so the Result's Dist is bit-identical to what an
// uninterrupted run would have produced, and its Stats fold the resumed
// run's cost on top of the cost already sunk (so resume cost is
// Stats.Bytes - cp.Stats.Bytes, directly comparable to a full restart).
//
// xo configures the resumed run. A nil xo.Faults means "inherit": the
// checkpoint's schedule shifted by cp.At. Tracer and Retry also default to
// the checkpoint's when unset; Failover's zero value is FailoverReroute,
// which is almost always what a resume wants.
//
// If the resumed run fails in turn, Resume returns a new *ExecError whose
// Checkpoint has absorbed this attempt's deliveries, cost and fault view —
// resuming is idempotent-in-the-limit: each attempt only shrinks the
// residual, and calling Resume on the new checkpoint continues from there.
func Resume(cp *Checkpoint, xo ExecOptions) (*Result, error) {
	return resumeMapped(cp, xo, nil)
}

// resumeMapped is Resume over a relabeled physical embedding: phys maps
// each logical node to the live physical node hosting it (nil means
// identity). Residual payloads are gathered and scattered host-side by
// logical id either way; phys only decides where the transport injects and
// ejects them, so a remapped resume stays element-exact. Logical pairs
// whose hosts coincide under phys route as zero-hop flows, which the router
// completes host-side without touching the network.
func resumeMapped(cp *Checkpoint, xo ExecOptions, phys func(uint64) uint64) (*Result, error) {
	p := cp.Plan
	mv := p.Moves()
	if xo.Faults == nil && cp.Opts.Faults != nil {
		xo.Faults = cp.Opts.Faults.After(cp.At)
	}
	if xo.Tracer == nil {
		xo.Tracer = cp.Opts.Tracer
	}
	if xo.Retry == (fabric.RetryPolicy{}) {
		xo.Retry = cp.Opts.Retry
	}
	if cp.Delivered == nil {
		cp.Delivered = plan.NewDelivered()
	}

	residual := cp.Remaining()
	if len(residual) == 0 {
		return &Result{Dist: finishDist(p.After(), cp.Loc), Stats: cp.Stats}, nil
	}

	// Local residuals (self pairs) are replayed host-side; network residuals
	// become direct flows below.
	netRes := residual[:0:0]
	for _, r := range residual {
		if r.Src != r.Dst {
			netRes = append(netRes, r)
			continue
		}
		id := r.Src
		if id < uint64(len(cp.Src.Local)) && cp.Loc[id] != nil {
			data := mv.GatherRange(id, cp.Src.Local[id], id, r.Off, r.Len)
			mv.ScatterRange(id, cp.Loc[id], id, r.Off, data)
		}
		cp.Delivered.Add(id, id, r.Off, r.Len)
	}
	if len(netRes) == 0 {
		return &Result{Dist: finishDist(p.After(), cp.Loc), Stats: cp.Stats}, nil
	}

	e, err := planEngine(p, xo)
	if err != nil {
		return nil, err
	}
	debug := e.DebugChecks()

	// One direct flow per residual span, dimension-order routed. Ecube
	// routes are shortest paths, so resume traffic is bounded by the
	// residual volume times the pair distance — never more than what a full
	// restart would move for the same pairs, and usually far less.
	pk := p.Config().Packets
	flows := make([]router.Flow, len(netRes))
	for i, r := range netRes {
		ps, pd := r.Src, r.Dst
		if phys != nil {
			ps, pd = phys(r.Src), phys(r.Dst)
		}
		flows[i] = router.Flow{
			Src: ps, Dst: pd, Dims: router.Ecube(ps, pd, p.NDims()), Packets: pk,
			Data: mv.GatherRange(r.Src, cp.Src.Local[r.Src], r.Dst, r.Off, r.Len),
		}
		if debug {
			flows[i].Tags = addrTags(r.Src, r.Off, r.Len)
		}
	}
	keptIdx := make([]int, len(flows))
	for i := range keptIdx {
		keptIdx[i] = i
	}
	var rep router.FailoverReport
	if xo.Faults != nil && xo.Failover != FailoverNone {
		flows, keptIdx, rep, err = router.Failover(
			flows, p.NDims(), xo.Faults.PermanentlyDown, xo.Failover == FailoverAbandon)
		if err != nil {
			return nil, err
		}
	}

	deliveries, part, err := router.RunRecover(e, flows)
	if err != nil {
		// Fold this attempt's completed flows into the checkpoint and hand
		// back a new one: Opts/At describe the just-failed attempt (its
		// fault view and how far it got), Stats the cumulative cost.
		for k, fi := range part.FlowIdx {
			r := netRes[keptIdx[fi]]
			if debug && part.Tags[k] != nil {
				verifyTagsHost(r.Src, r.Dst, r.Off, part.Tags[k])
			}
			mv.ScatterRange(r.Dst, cp.Loc[r.Dst], r.Src, r.Off, part.Data[k])
			cp.Delivered.Add(r.Src, r.Dst, r.Off, len(part.Data[k]))
		}
		st := e.Stats()
		st.Rerouted = rep.Rerouted
		st.ExtraHops = rep.ExtraHops
		st.Abandoned = rep.Abandoned
		cp.Stats = mergeStats(cp.Stats, st)
		cp.At = st.Time
		cp.Opts = xo
		return nil, &ExecError{Checkpoint: cp, Err: err}
	}

	for dst, ds := range deliveries {
		// Zip deliveries with logical residuals per (physical dst, physical
		// src), in kept-flow order — the same pairing discipline execFlow
		// uses. Under a remap several logical pairs can share one physical
		// pair; flow order disambiguates, because the router sorts each
		// destination's deliveries stably by source.
		pend := make(map[uint64][]int)
		for k, f := range flows {
			if f.Dst == dst {
				pend[f.Src] = append(pend[f.Src], k)
			}
		}
		for _, dl := range ds {
			k := pend[dl.Src][0]
			pend[dl.Src] = pend[dl.Src][1:]
			r := netRes[keptIdx[k]]
			if debug && dl.Tags != nil {
				verifyTagsHost(r.Src, r.Dst, r.Off, dl.Tags)
			}
			mv.ScatterRange(r.Dst, cp.Loc[r.Dst], r.Src, r.Off, dl.Data)
			cp.Delivered.Add(r.Src, r.Dst, r.Off, len(dl.Data))
		}
	}
	st := e.Stats()
	st.Rerouted = rep.Rerouted
	st.ExtraHops = rep.ExtraHops
	st.Abandoned = rep.Abandoned
	return &Result{Dist: finishDist(p.After(), cp.Loc), Stats: mergeStats(cp.Stats, st)}, nil
}
