package core

import (
	"boolcube/internal/comm"
	"boolcube/internal/fabric"
	"boolcube/internal/matrix"
	"boolcube/internal/plan"
)

// execExchangeBaseline is the pre-checkpointing exchange executor, retained
// verbatim as the control arm of the checkpoint-overhead benchmark
// (BenchmarkExchangeBaseline vs BenchmarkExchangeCheckpointed): blocks are
// held until the exchange completes and scattered in bulk, with no
// per-delivery progress recording, no checksums stamped, and no failure
// checkpoint. It must stay behaviorally identical to execExchange on the
// success path — the bench harness asserts equal Stats before timing.
func execExchangeBaseline(p *plan.Plan, d *matrix.Dist, xo ExecOptions) (*Result, error) {
	e, err := planEngine(p, xo)
	if err != nil {
		return nil, err
	}
	mv := p.Moves()
	cfg := p.Config()
	dims := p.Dims()
	after := p.After()
	loc := newLocal(after, e.Nodes())
	hint := p.MsgElemsHint()
	err = e.Run(func(nd fabric.Node) {
		id := nd.ID()
		local := srcLocal(d, id)
		if cfg.LocalCopies && len(local) > 0 {
			nd.Copy(len(local) * cfg.Machine.ElemBytes)
		}
		var blocks []comm.Block
		if local != nil {
			dests := mv.Destinations(id)
			arena := nd.AllocData(hint)
			blocks = make([]comm.Block, 0, len(dests))
			off := 0
			for _, dp := range dests {
				n := mv.PayloadLen(id, dp)
				buf := arena[off : off+n : off+n]
				off += n
				mv.GatherInto(id, local, dp, buf)
				blocks = append(blocks, comm.Block{Src: id, Dst: dp, Data: buf})
			}
		}
		got := comm.ExchangeBlocks(nd, dims, cfg.Strategy, blocks)
		out := loc[id]
		if out != nil {
			if local != nil {
				mv.Scatter(id, out, id, mv.Gather(id, local, id))
			}
			for _, b := range got {
				mv.Scatter(id, out, b.Src, b.Data)
			}
			if cfg.LocalCopies {
				nd.Copy(len(out) * cfg.Machine.ElemBytes)
			}
		}
	})
	if err != nil {
		return nil, err //cubevet:ignore ckptsafe -- control arm of the checkpoint-overhead benchmark; must stay checkpoint-free
	}
	return &Result{Dist: finishDist(after, loc), Stats: e.Stats()}, nil
}
