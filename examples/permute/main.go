// Permute demonstrates Section 7 of the paper: using the general exchange
// algorithm for permutations other than the transpose. It performs the
// bit-reversal permutation (the data reordering of an FFT) and an arbitrary
// dimension permutation realized by at most ceil(log2 n) parallel swappings
// (Lemma 15), verifying both against direct computation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"boolcube"
)

func reverseBits(x uint64, n int) uint64 {
	var y uint64
	for i := 0; i < n; i++ {
		y = y<<1 | (x>>uint(i))&1
	}
	return y
}

func main() {
	const n = 6
	N := 1 << n
	payload := func() [][]float64 {
		data := make([][]float64, N)
		for i := range data {
			data[i] = []float64{float64(i)}
		}
		return data
	}

	// --- Bit reversal (FFT data reordering) ---
	res, err := boolcube.BitReversal(n, boolcube.IPSC(), payload())
	if err != nil {
		log.Fatal(err)
	}
	for x := 0; x < N; x++ {
		want := float64(reverseBits(uint64(x), n))
		if res.Data[x][0] != want {
			log.Fatalf("bit reversal: node %0*b holds %v, want %v", n, x, res.Data[x][0], want)
		}
	}
	fmt.Printf("bit-reversal on a %d-cube: %.1f ms simulated, %d start-ups — verified\n",
		n, res.Stats.Time/1000, res.Stats.Startups)

	// --- Shuffle sh^2 as a dimension permutation ---
	pi := boolcube.ShufflePermutation(n, 2)
	res, err = boolcube.PermuteDims(n, pi, boolcube.IPSC(), payload())
	if err != nil {
		log.Fatal(err)
	}
	for x := 0; x < N; x++ {
		dst := int((uint64(x)<<2 | uint64(x)>>(n-2)) & uint64(N-1))
		if res.Data[dst][0] != float64(x) {
			log.Fatalf("shuffle: node %0*b holds %v, want payload of %0*b", n, dst, res.Data[dst], n, x)
		}
	}
	fmt.Printf("sh^2 shuffle via parallel swappings: %.1f ms simulated — verified\n", res.Stats.Time/1000)

	// --- A random dimension permutation ---
	rng := rand.New(rand.NewSource(42))
	pi = rng.Perm(n)
	res, err = boolcube.PermuteDims(n, pi, boolcube.IPSC(), payload())
	if err != nil {
		log.Fatal(err)
	}
	apply := func(x uint64) uint64 {
		var y uint64
		for p, t := range pi {
			y |= (x >> uint(p) & 1) << uint(t)
		}
		return y
	}
	for x := 0; x < N; x++ {
		dst := apply(uint64(x))
		if res.Data[dst][0] != float64(x) {
			log.Fatalf("perm %v: node %0*b holds %v, want payload of %0*b", pi, n, dst, res.Data[dst], n, x)
		}
	}
	fmt.Printf("random dimension permutation %v via ≤ %d parallel swappings: %.1f ms — verified\n",
		pi, ceilLog2(n), res.Stats.Time/1000)
}

func ceilLog2(n int) int {
	k, s := 0, 1
	for s < n {
		s *= 2
		k++
	}
	return k
}
