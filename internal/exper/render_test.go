package exper

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:      "sample",
		Title:   "a sample",
		Columns: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	t.AddRow(1, 2.5)
	t.AddRow("x,y", `quo"ted`)
	t.AddRow(int64(7), 1234567.0)
	return t
}

func TestTableString(t *testing.T) {
	s := sampleTable().String()
	for _, want := range []string{"== sample: a sample ==", "a    b", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("text rendering missing %q:\n%s", want, s)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	s := sampleTable().Markdown()
	for _, want := range []string{"### sample — a sample", "| a | b |", "| --- | --- |", "> a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q:\n%s", want, s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	s := sampleTable().CSV()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines, want 4:\n%s", len(lines), s)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"x,y"`) {
		t.Errorf("comma cell not quoted: %q", lines[2])
	}
	if !strings.Contains(lines[2], `"quo""ted"`) {
		t.Errorf("quote cell not escaped: %q", lines[2])
	}
}

func TestAddRowFormats(t *testing.T) {
	tab := &Table{Columns: []string{"v"}}
	tab.AddRow(0.0)
	tab.AddRow(0.25)
	tab.AddRow(3.14159)
	tab.AddRow(150.7)
	tab.AddRow(2.5e6)
	want := []string{"0", "0.25", "3.14", "151", "2.5e+06"}
	for i, w := range want {
		if tab.Rows[i][0] != w {
			t.Errorf("row %d = %q, want %q", i, tab.Rows[i][0], w)
		}
	}
}
