package flow

import (
	"go/ast"
	"go/types"
)

// Mode selects how tracking propagates through an assignment.
type Mode int

const (
	// Aliases tracks storage aliasing: the left-hand side joins the set
	// only when the right-hand side is a wrapper chain (parens, selectors,
	// index, slice expressions) over a tracked object, because those share
	// the tracked object's backing storage. A function call breaks the
	// chain — calls are treated as copies (Clone, append to a fresh slice).
	Aliases Mode = iota
	// Derived tracks value derivation: the left-hand side joins the set
	// when the right-hand side mentions a tracked object anywhere, however
	// transformed. This is the nodeprog notion of "a value derived from
	// nd.ID()" that makes an indexed write partitioned.
	Derived
)

// Set is the alias/derivation fixpoint generalized from the original
// poolretain pass. Seed it with the objects of interest, Solve over a
// function body, then query membership and roots. Only objects declared
// inside the scope span are ever added — captured state is the passes' own
// business (see Escapes).
type Set struct {
	info  *types.Info
	scope Span
	mode  Mode
	root  map[types.Object]types.Object
}

// NewSet returns an empty set tracking objects declared within scope.
func NewSet(info *types.Info, scope Span, mode Mode) *Set {
	return &Set{info: info, scope: scope, mode: mode, root: map[types.Object]types.Object{}}
}

// Local reports whether the object is declared inside the set's scope.
func (s *Set) Local(o types.Object) bool {
	return o != nil && s.scope.Contains(o.Pos())
}

// Seed adds a root object to the set (it becomes its own root).
func (s *Set) Seed(o types.Object) {
	if o != nil {
		s.root[o] = o
	}
}

// Has reports whether the object is tracked (a seed or an alias).
func (s *Set) Has(o types.Object) bool {
	_, ok := s.root[o]
	return ok
}

// Root returns the seed object an alias traces back to, or nil.
func (s *Set) Root(o types.Object) types.Object { return s.root[o] }

// Objects returns the tracked-object set keyed to each member's root.
func (s *Set) Objects() map[types.Object]types.Object { return s.root }

// RootOf resolves an expression to the seed it aliases, or nil. In Aliases
// mode it follows wrapper chains down to a tracked identifier; a call
// expression breaks the chain. In Derived mode any mention of a tracked
// object counts, and the first one found (in syntactic order) names the
// root.
func (s *Set) RootOf(e ast.Expr) types.Object {
	if s.mode == Derived {
		var root types.Object
		ast.Inspect(e, func(n ast.Node) bool {
			if root != nil {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if o := ObjOf(s.info, id); o != nil {
					if r, ok := s.root[o]; ok {
						root = r
						return false
					}
				}
			}
			return true
		})
		return root
	}
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if o := ObjOf(s.info, x); o != nil {
				return s.root[o]
			}
			return nil
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Solve runs the propagation fixpoint over body: assignments, var specs
// and (in Derived mode) range statements add scope-local left-hand sides
// whose right-hand side aliases/derives from a tracked object.
func (s *Set) Solve(body ast.Node) {
	for changed := true; changed; {
		changed = false
		mark := func(id *ast.Ident, root types.Object) {
			if o := ObjOf(s.info, id); s.Local(o) && !s.Has(o) {
				s.root[o] = root
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				assignPairs(st, func(lhs, rhs ast.Expr) {
					if root := s.RootOf(rhs); root != nil {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							mark(id, root)
						}
					}
				})
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if i < len(st.Values) {
						if root := s.RootOf(st.Values[i]); root != nil {
							mark(name, root)
						}
					}
				}
			case *ast.RangeStmt:
				if s.mode != Derived {
					return true
				}
				if root := s.RootOf(st.X); root != nil {
					if id, ok := st.Key.(*ast.Ident); ok && id != nil {
						mark(id, root)
					}
					if id, ok := st.Value.(*ast.Ident); ok && id != nil {
						mark(id, root)
					}
				}
			}
			return true
		})
	}
}
